"""Core behaviour: PKRU instructions, serialization, the MMU check."""

import pytest

from repro.consts import (
    PAGE_SIZE,
    PROT_EXEC,
    PROT_READ,
    PROT_WRITE,
)
from repro.errors import (
    GeneralProtectionFault,
    PkeyFault,
    SegmentationFault,
)
from repro.hw.cpu import Core, READ, WRITE
from repro.hw.cycles import Clock, DEFAULT_COST_MODEL
from repro.hw.machine import Machine
from repro.hw.paging import PageTable
from repro.hw.pkru import KEY_RIGHTS_NONE, KEY_RIGHTS_READ, PKRU


@pytest.fixture
def core():
    clock = Clock()
    return Core(0, clock, DEFAULT_COST_MODEL)


@pytest.fixture
def memory_setup():
    """A page table with one rw page (pkey 3) and one exec page (pkey 0)."""
    machine = Machine(num_cores=1)
    pt = PageTable()
    pt.map(0x10, machine.memory.alloc_frame(), PROT_READ | PROT_WRITE,
           pkey=3)
    pt.map(0x20, machine.memory.alloc_frame(), PROT_READ | PROT_EXEC)
    return machine.core(0), pt


class TestPkruInstructions:
    def test_wrpkru_updates_register(self, core):
        core.wrpkru(0xDEAD_BEEF & 0xFFFF_FFFF)
        assert core.pkru.value == 0xDEADBEEF

    def test_wrpkru_requires_zero_ecx_edx(self, core):
        with pytest.raises(GeneralProtectionFault):
            core.wrpkru(0, ecx=1)
        with pytest.raises(GeneralProtectionFault):
            core.wrpkru(0, edx=2)

    def test_rdpkru_requires_zero_ecx(self, core):
        with pytest.raises(GeneralProtectionFault):
            core.rdpkru(ecx=7)

    def test_rdpkru_returns_current_value(self, core):
        core.wrpkru(0x1234)
        core.reset_pipeline()
        assert core.rdpkru() == 0x1234

    def test_wrpkru_costs_23_3_cycles(self, core):
        before = core.clock.now
        core.wrpkru(0)
        assert core.clock.now - before == pytest.approx(23.3)

    def test_rdpkru_costs_half_cycle(self, core):
        before = core.clock.now
        assert core.rdpkru() is not None
        assert core.clock.now - before == pytest.approx(0.5)


class TestSerialization:
    """Figure 2: ADDs after WRPKRU (W2) are slower than before (W1)."""

    def _w1(self, n):
        """n ADDs, then WRPKRU."""
        core = Core(0, Clock(), DEFAULT_COST_MODEL)
        core.execute_adds(n)
        core.wrpkru(0)
        return core.clock.now

    def _w2(self, n):
        """WRPKRU, then n ADDs."""
        core = Core(0, Clock(), DEFAULT_COST_MODEL)
        core.wrpkru(0)
        core.execute_adds(n)
        return core.clock.now

    @pytest.mark.parametrize("n", [1, 4, 8, 16, 32, 64])
    def test_w2_always_slower_than_w1(self, n):
        assert self._w2(n) > self._w1(n)

    def test_gap_saturates_beyond_the_window(self):
        window = DEFAULT_COST_MODEL.serialization_window
        gap_at_window = self._w2(window) - self._w1(window)
        gap_beyond = self._w2(window * 4) - self._w1(window * 4)
        assert gap_beyond == pytest.approx(gap_at_window)

    def test_adds_alone_use_full_issue_width(self):
        core = Core(0, Clock(), DEFAULT_COST_MODEL)
        core.execute_adds(100)
        assert core.clock.now == pytest.approx(
            100 * DEFAULT_COST_MODEL.add_throughput)

    def test_reset_pipeline_clears_shadow(self):
        core = Core(0, Clock(), DEFAULT_COST_MODEL)
        core.wrpkru(0)
        core.reset_pipeline()
        before = core.clock.now
        core.execute_adds(4)
        assert core.clock.now - before == pytest.approx(1.0)


class TestMmuCheck:
    def test_read_write_allowed_with_rights(self, memory_setup):
        core, pt = memory_setup
        core.load_pkru(PKRU.allow_all())
        core.write(pt, 0x10000, b"data")
        assert core.read(pt, 0x10000, 4) == b"data"

    def test_unmapped_address_segfaults(self, memory_setup):
        core, pt = memory_setup
        with pytest.raises(SegmentationFault):
            core.read(pt, 0x99000, 1)

    def test_page_permission_checked_first(self, memory_setup):
        core, pt = memory_setup
        core.load_pkru(PKRU.allow_all())
        pt.set_prot(0x10, PROT_READ)
        with pytest.raises(SegmentationFault) as exc_info:
            core.write(pt, 0x10000, b"x")
        assert not isinstance(exc_info.value, PkeyFault)

    def test_pkey_denies_read(self, memory_setup):
        core, pt = memory_setup
        core.load_pkru(PKRU.allow_all().with_rights(3, KEY_RIGHTS_NONE))
        with pytest.raises(PkeyFault) as exc_info:
            core.read(pt, 0x10000, 1)
        assert exc_info.value.pkey == 3

    def test_pkey_read_only_denies_write(self, memory_setup):
        core, pt = memory_setup
        core.load_pkru(PKRU.allow_all().with_rights(3, KEY_RIGHTS_READ))
        assert core.read(pt, 0x10000, 1) == b"\x00"
        with pytest.raises(PkeyFault):
            core.write(pt, 0x10000, b"x")

    def test_effective_permission_is_intersection(self, memory_setup):
        """Figure 1: page says rw, PKRU says read-only -> read-only."""
        core, pt = memory_setup
        core.load_pkru(PKRU.allow_all().with_rights(3, KEY_RIGHTS_READ))
        core.read(pt, 0x10000, 1)
        with pytest.raises(PkeyFault):
            core.write(pt, 0x10000, b"y")

    def test_instruction_fetch_ignores_pkru(self, memory_setup):
        """Figure 1: ifetch is independent of the PKRU -> execute-only
        memory is possible."""
        core, pt = memory_setup
        pt.set_pkey(0x20, 3)
        core.load_pkru(PKRU.allow_all().with_rights(3, KEY_RIGHTS_NONE))
        # Data read denied by pkey...
        with pytest.raises(PkeyFault):
            core.read(pt, 0x20000, 1)
        # ...but instruction fetch succeeds.
        assert core.fetch(pt, 0x20000, 4) == b"\x00" * 4

    def test_fetch_from_non_executable_page_faults(self, memory_setup):
        core, pt = memory_setup
        core.load_pkru(PKRU.allow_all())
        with pytest.raises(SegmentationFault):
            core.fetch(pt, 0x10000, 1)

    def test_access_crossing_pages_checks_both(self, memory_setup):
        core, pt = memory_setup
        core.load_pkru(PKRU.allow_all())
        addr = 0x10000 + PAGE_SIZE - 2
        with pytest.raises(SegmentationFault):
            core.read(pt, addr, 8)  # crosses into unmapped 0x11

    def test_write_spanning_two_pages(self):
        machine = Machine(num_cores=1)
        pt = PageTable()
        pt.map(0x10, machine.memory.alloc_frame(), PROT_READ | PROT_WRITE)
        pt.map(0x11, machine.memory.alloc_frame(), PROT_READ | PROT_WRITE)
        core = machine.core(0)
        core.load_pkru(PKRU.allow_all())
        addr = 0x10000 + PAGE_SIZE - 3
        core.write(pt, addr, b"abcdef")
        assert core.read(pt, addr, 6) == b"abcdef"

    def test_bad_access_kind_rejected(self, memory_setup):
        core, pt = memory_setup
        with pytest.raises(ValueError):
            core.check_access(pt, 0x10000, "poke")


class TestTlbIntegration:
    def test_first_access_misses_then_hits(self, memory_setup):
        core, pt = memory_setup
        core.load_pkru(PKRU.allow_all())
        core.read(pt, 0x10000, 1)
        assert core.tlb.stats.misses == 1
        core.read(pt, 0x10000, 1)
        assert core.tlb.stats.hits == 1

    def test_tlb_miss_charges_page_walk(self, memory_setup):
        core, pt = memory_setup
        core.load_pkru(PKRU.allow_all())
        t0 = core.clock.now
        core.read(pt, 0x10000, 1)
        cold = core.clock.now - t0
        t1 = core.clock.now
        core.read(pt, 0x10000, 1)
        warm = core.clock.now - t1
        assert cold - warm == pytest.approx(DEFAULT_COST_MODEL.tlb_miss_walk)

    def test_pkey_check_uses_current_pkru_not_tlb_time_pkru(self,
                                                            memory_setup):
        """PKRU is consulted at access time: no TLB flush needed after a
        WRPKRU — the paper's core performance claim."""
        core, pt = memory_setup
        core.load_pkru(PKRU.allow_all())
        core.read(pt, 0x10000, 1)  # TLB now warm with pkey=3
        core.load_pkru(PKRU.allow_all().with_rights(3, KEY_RIGHTS_NONE))
        with pytest.raises(PkeyFault):
            core.read(pt, 0x10000, 1)
        assert core.tlb.stats.full_flushes == 0
