"""The MMU hot-path fast path: authoritative TLB hits, generation-stamp
invalidation, batched transfer parity, and the overlay-pruning and
stats-contract regressions it depends on."""

import pytest

from repro.consts import PAGE_SIZE, PROT_READ, PROT_WRITE
from repro.errors import PkeyFault, SegmentationFault
from repro.hw.machine import Machine
from repro.hw.paging import PageTable
from repro.hw.pkru import KEY_RIGHTS_NONE, PKRU

RW = PROT_READ | PROT_WRITE


def make_core_and_table(mmu_fast_path=True, pages=4):
    machine = Machine(num_cores=1, mmu_fast_path=mmu_fast_path)
    pt = PageTable()
    for i in range(pages):
        pt.map(0x10 + i, machine.memory.alloc_frame(), RW, pkey=3)
    core = machine.core(0)
    core.load_pkru(PKRU.allow_all())
    return machine, core, pt


class CountingPageTable(PageTable):
    """PageTable that counts every lookup (fault-handler path included)."""

    def __init__(self):
        super().__init__()
        self.lookups = 0

    def lookup(self, vpn):
        self.lookups += 1
        return super().lookup(vpn)


class TestAuthoritativeHits:
    def test_warm_hit_skips_page_table_lookup(self):
        machine = Machine(num_cores=1, mmu_fast_path=True)
        pt = CountingPageTable()
        pt.map(0x10, machine.memory.alloc_frame(), RW, pkey=3)
        core = machine.core(0)
        core.load_pkru(PKRU.allow_all())
        core.read(pt, 0x10000, 1)           # cold: walk + fill
        walked = pt.lookups
        assert walked == 1
        for _ in range(10):
            core.read(pt, 0x10000, 1)       # warm: TLB-authoritative
        assert pt.lookups == walked
        assert core.tlb.stats.hits == 10

    def test_slow_path_validates_every_access(self):
        machine = Machine(num_cores=1, mmu_fast_path=False)
        pt = CountingPageTable()
        pt.map(0x10, machine.memory.alloc_frame(), RW, pkey=3)
        core = machine.core(0)
        core.load_pkru(PKRU.allow_all())
        core.read(pt, 0x10000, 1)
        core.read(pt, 0x10000, 1)
        assert pt.lookups == 2

    def test_generation_bump_demotes_hit_to_validation(self):
        machine = Machine(num_cores=1, mmu_fast_path=True)
        pt = CountingPageTable()
        pt.map(0x10, machine.memory.alloc_frame(), RW, pkey=3)
        core = machine.core(0)
        core.load_pkru(PKRU.allow_all())
        core.read(pt, 0x10000, 1)
        baseline = pt.lookups
        pt.map(0x30, machine.memory.alloc_frame(), RW)  # bumps generation
        core.read(pt, 0x10000, 1)           # stale stamp -> validates
        assert pt.lookups == baseline + 1
        core.read(pt, 0x10000, 1)           # re-stamped -> authoritative
        assert pt.lookups == baseline + 1

    def test_stale_permissions_served_until_shootdown(self):
        """The fast path must preserve TLB-stale semantics: a prot
        change without a TLB flush keeps serving the cached bits."""
        for fast in (True, False):
            machine, core, pt = make_core_and_table(mmu_fast_path=fast)
            core.write(pt, 0x10000, b"x")   # TLB caches prot=RW
            pt.set_prot(0x10, PROT_READ)    # no shootdown
            core.write(pt, 0x10000, b"y")   # stale RW still honored
            core.tlb.flush()
            with pytest.raises(SegmentationFault):
                core.write(pt, 0x10000, b"z")

    def test_unmap_without_shootdown_faults_on_access(self):
        machine, core, pt = make_core_and_table()
        core.read(pt, 0x10000, 1)
        pt.unmap(0x10)
        with pytest.raises(SegmentationFault) as exc_info:
            core.read(pt, 0x10000, 1)
        assert exc_info.value.unmapped
        assert core.tlb.stats.stale_hits == 1

    def test_cross_table_hit_never_authoritative(self):
        """A TLB entry from another address space must not serve its
        frame just because the generation numbers coincide."""
        machine = Machine(num_cores=1, mmu_fast_path=True)
        core = machine.core(0)
        core.load_pkru(PKRU.allow_all())
        pt_a, pt_b = PageTable(), PageTable()
        frame_a = machine.memory.alloc_frame()
        frame_b = machine.memory.alloc_frame()
        pt_a.map(0x10, frame_a, RW)
        pt_b.map(0x10, frame_b, RW)
        assert pt_a.generation == pt_b.generation
        core.write(pt_a, 0x10000, b"A")
        core.write(pt_b, 0x10000, b"B")
        assert core.read(pt_a, 0x10000, 1) == b"A"
        assert core.read(pt_b, 0x10000, 1) == b"B"


class TestBatchedTransfer:
    def test_multi_page_read_round_trips(self):
        machine, core, pt = make_core_and_table(pages=4)
        data = bytes(range(256)) * (4 * PAGE_SIZE // 256)
        core.write(pt, 0x10000, data)
        assert core.read(pt, 0x10000, len(data)) == data

    def test_fast_and_slow_paths_charge_identical_cycles(self):
        results = {}
        for fast in (True, False):
            machine, core, pt = make_core_and_table(mmu_fast_path=fast,
                                                    pages=4)
            data = b"\xab" * (3 * PAGE_SIZE + 100)
            core.write(pt, 0x10000, data)
            core.read(pt, 0x10000, len(data))
            core.read(pt, 0x10000 + 7, 2 * PAGE_SIZE)
            results[fast] = (machine.clock.now,
                             dict(machine.obs.aggregator.cycles))
        assert results[True][0] == results[False][0]
        assert results[True][1] == results[False][1]

    def test_partial_write_before_faulting_page_persists(self):
        for fast in (True, False):
            machine, core, pt = make_core_and_table(mmu_fast_path=fast,
                                                    pages=2)
            addr = 0x11000 + PAGE_SIZE - 4
            with pytest.raises(SegmentationFault):
                # Crosses from mapped 0x11 into unmapped 0x12.
                core.write(pt, addr, b"12345678")
            # The bytes that landed on the mapped page stay written.
            assert core.read(pt, addr, 4) == b"1234"

    def test_unmapped_fault_charges_only_prior_pages(self):
        """Fault ordering parity: an unmapped fault at page k leaves
        exactly k-1 mem_access charges, same as the per-page walk."""
        charges = {}
        for fast in (True, False):
            machine, core, pt = make_core_and_table(mmu_fast_path=fast,
                                                    pages=2)
            with pytest.raises(SegmentationFault):
                core.read(pt, 0x10000, 3 * PAGE_SIZE)  # 0x12 unmapped
            charges[fast] = machine.obs.aggregator.cycles.get(
                "hw.mem.access", 0.0)
        assert charges[True] == charges[False]
        assert charges[True] == pytest.approx(
            2 * machine.costs.mem_access)

    def test_perm_fault_charges_faulting_page_too(self):
        for fast in (True, False):
            machine, core, pt = make_core_and_table(mmu_fast_path=fast,
                                                    pages=2)
            core.load_pkru(
                PKRU.allow_all().with_rights(3, KEY_RIGHTS_NONE))
            with pytest.raises(PkeyFault):
                core.read(pt, 0x10000, 1)
            assert machine.obs.aggregator.cycles.get(
                "hw.mem.access") == pytest.approx(machine.costs.mem_access)
            assert core.data_accesses == 1

    def test_counter_conservation_invariant_audited(self):
        machine, core, pt = make_core_and_table()
        core.read(pt, 0x10000, 2 * PAGE_SIZE)
        core.read(pt, 0x10000, 1)
        ok, _ = machine.obs.audit()
        assert ok
        assert machine.obs.invariant_failures() == {}
        # Corrupt a counter: the registered invariant must trip.
        core.data_accesses += 1
        assert not machine.obs.audit()[0]
        failures = machine.obs.invariant_failures()
        assert "mmu_counter_conservation" in failures

    def test_unmapped_probe_not_counted_as_walk_miss(self):
        # Regression (stats-drift bugfix): an access that faults
        # unmapped must not count a TLB miss — no walk was charged, so
        # misses would diverge from walks and the conservation audit
        # (hits + misses == accesses) would break.
        for fast in (True, False):
            machine, core, pt = make_core_and_table(mmu_fast_path=fast)
            with pytest.raises(SegmentationFault):
                core.read(pt, 0x99000, 1)
            assert core.tlb.stats.misses == 0
            assert core.tlb.stats.unmapped_misses == 1
            assert machine.obs.audit()[0]


class TestOverlayPruning:
    def test_pkey_only_bulk_updates_stay_bounded(self):
        # Regression (headline bugfix): 10k repeated pkey-only bulk
        # updates — the mpk_mprotect hot path — must leave O(1)
        # overlays.  Pre-fix, pruning required prot AND pkey to be set,
        # so this accumulated 10_000 overlays and every subsequent
        # access paid O(overlays) in _materialize.
        pt = PageTable()
        for i in range(10_000):
            pt.bulk_update(0x100, 0x300, pkey=(i % 14) + 1)
        assert len(pt._overlays) <= PageTable.OVERLAY_FOLD_CAP
        assert len(pt._overlays) <= 2

    def test_prot_only_bulk_updates_stay_bounded(self):
        pt = PageTable()
        for i in range(10_000):
            pt.bulk_update(0x100, 0x300,
                           prot=PROT_READ if i % 2 else RW)
        assert len(pt._overlays) <= 2

    def test_partial_shadow_nulls_only_covered_field(self):
        pt = PageTable()
        frame_owner = Machine(num_cores=1)
        f = frame_owner.memory.alloc_frame
        pt.map(0x100, f(), RW, pkey=1)
        pt.bulk_update(0x100, 0x200, prot=PROT_READ, pkey=5)
        pt.bulk_update(0x100, 0x200, pkey=7)  # shadows pkey, not prot
        entry = pt.lookup(0x100)
        assert entry.prot == PROT_READ
        assert entry.pkey == 7

    def test_fold_cap_bounds_disjoint_overlay_churn(self):
        pt = PageTable()
        machine = Machine(num_cores=1)
        pt.map(0x100, machine.memory.alloc_frame(), RW, pkey=1)
        # Disjoint ranges never shadow each other; only the fold cap
        # keeps the list bounded.
        for i in range(1000):
            base = 0x1000 + 2 * i
            pt.bulk_update(base, base + 1, pkey=(i % 14) + 1)
        assert len(pt._overlays) <= PageTable.OVERLAY_FOLD_CAP
        # And folding preserved already-populated entries' pending state.
        pt.bulk_update(0x100, 0x101, pkey=9)
        assert pt.lookup(0x100).pkey == 9
