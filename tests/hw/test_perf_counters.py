"""Architectural event counters on cores and the machine summary."""


from repro.consts import PAGE_SIZE, PROT_READ, PROT_WRITE
from repro import Kernel, Libmpk, Machine

RW = PROT_READ | PROT_WRITE


class TestCounters:
    def test_wrpkru_and_rdpkru_counted(self, kernel, task):
        core = kernel.machine.core(task.core_id)
        before_w, before_r = core.wrpkru_count, core.rdpkru_count
        task.wrpkru(0)
        task.rdpkru()
        task.pkey_set(3, 0x1)   # one more WRPKRU
        assert core.wrpkru_count == before_w + 2
        assert core.rdpkru_count == before_r + 1

    def test_access_counters_split_data_and_fetch(self, kernel, task):
        from repro.consts import PROT_EXEC
        core = kernel.machine.core(task.core_id)
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW | PROT_EXEC)
        d0, f0 = core.data_accesses, core.instruction_fetches
        task.write(addr, b"abc")
        task.read(addr, 3)
        task.fetch(addr, 3)
        assert core.data_accesses == d0 + 2
        assert core.instruction_fetches == f0 + 1

    def test_machine_summary_aggregates_cores(self):
        kernel = Kernel(Machine(num_cores=4))
        process = kernel.create_process()
        a = process.main_task
        b = process.spawn_task()
        kernel.scheduler.schedule(b, charge=False)
        a.wrpkru(0)
        b.wrpkru(0)
        summary = kernel.machine.perf_summary()
        assert summary["wrpkru"] >= 2
        assert summary["cycles"] == kernel.clock.now

    def test_libmpk_hit_path_is_one_wrpkru(self, kernel, process,
                                           task):
        """The paper's claim made countable: a cached mpk_mprotect with
        no siblings executes exactly one WRPKRU."""
        lib = Libmpk(process)
        lib.mpk_init(task)
        lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, 100, RW)
        core = kernel.machine.core(task.core_id)
        before = core.wrpkru_count
        lib.mpk_mprotect(task, 100, PROT_READ)
        assert core.wrpkru_count == before + 1

    def test_mprotect_path_executes_no_wrpkru(self, kernel, task):
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        core = kernel.machine.core(task.core_id)
        before = core.wrpkru_count
        kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_READ)
        assert core.wrpkru_count == before
