"""Machine construction, configuration, and measurement plumbing."""

import pytest

from repro.hw.cycles import CostModel
from repro import Machine


class TestConstruction:
    def test_paper_testbed_defaults(self):
        machine = Machine()
        assert machine.num_cores == 40           # 2x Xeon Gold 5115
        assert machine.memory.total_frames == (192 << 30) >> 12  # 192 GB

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            Machine(num_cores=0)

    def test_cores_share_the_clock(self):
        machine = Machine(num_cores=4)
        machine.core(0).execute_adds(4)
        before = machine.clock.now
        machine.core(3).execute_adds(4)
        assert machine.clock.now > before

    def test_custom_cost_model_reaches_cores(self):
        model = CostModel(wrpkru=1000.0)
        machine = Machine(num_cores=1, costs=model)
        before = machine.clock.now
        machine.core(0).wrpkru(0)
        assert machine.clock.now - before == pytest.approx(1000.0)

    def test_meltdown_flag_reaches_cores(self):
        hardened = Machine(num_cores=2, meltdown_mitigated=True)
        assert all(core.meltdown_mitigated for core in hardened.cores)
        legacy = Machine(num_cores=2)
        assert not any(core.meltdown_mitigated for core in legacy.cores)


class TestMeasurement:
    def test_measure_context_manager(self):
        machine = Machine(num_cores=1)
        with machine.measure() as region:
            machine.clock.charge(42.0)
        assert region.elapsed == pytest.approx(42.0)

    def test_perf_summary_shape(self):
        machine = Machine(num_cores=2)
        summary = machine.perf_summary()
        assert set(summary) == {"cycles", "wrpkru", "rdpkru",
                                "data_accesses", "instruction_fetches",
                                "tlb_misses", "tlb_flushes",
                                "charge_sites"}
        assert summary["wrpkru"] == 0
