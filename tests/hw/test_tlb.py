"""TLB behaviour: caching, capacity, flush accounting."""

import pytest

from repro.hw.cycles import Clock, DEFAULT_COST_MODEL
from repro.hw.tlb import TLB, TlbEntry


@pytest.fixture
def tlb():
    return TLB(Clock(), DEFAULT_COST_MODEL, capacity=4)


def entry(n):
    return TlbEntry(frame_number=n, prot=0x3, pkey=0)


class TestLookupFill:
    def test_miss_then_hit(self, tlb):
        assert tlb.lookup(1) is None
        tlb.fill(1, entry(1))
        assert tlb.lookup(1) == entry(1)
        assert tlb.stats.misses == 1
        assert tlb.stats.hits == 1

    def test_capacity_evicts_lru(self, tlb):
        for vpn in range(4):
            tlb.fill(vpn, entry(vpn))
        tlb.lookup(0)              # refresh vpn 0
        tlb.fill(4, entry(4))      # evicts vpn 1 (LRU)
        assert tlb.lookup(1) is None
        assert tlb.lookup(0) is not None
        assert tlb.lookup(4) is not None

    def test_refill_same_vpn_replaces(self, tlb):
        tlb.fill(1, entry(1))
        tlb.fill(1, entry(99))
        assert tlb.lookup(1).frame_number == 99
        assert len(tlb) == 1


class TestFlush:
    def test_full_flush_empties_and_charges(self, tlb):
        tlb.fill(1, entry(1))
        clock_before = tlb._clock.now
        tlb.flush()
        assert len(tlb) == 0
        assert tlb.stats.full_flushes == 1
        assert tlb._clock.now - clock_before == pytest.approx(
            DEFAULT_COST_MODEL.tlb_flush_full)

    def test_invalidate_single_page(self, tlb):
        tlb.fill(1, entry(1))
        tlb.fill(2, entry(2))
        tlb.invalidate_page(1)
        assert tlb.lookup(1) is None
        assert tlb.lookup(2) is not None
        assert tlb.stats.page_invalidations == 1

    def test_invalidate_absent_page_is_harmless(self, tlb):
        tlb.invalidate_page(42)
        assert tlb.stats.page_invalidations == 1

    def test_stats_reset(self, tlb):
        tlb.fill(1, entry(1))
        tlb.lookup(1)
        tlb.flush()
        tlb.stats.reset()
        assert tlb.stats.hits == 0
        assert tlb.stats.full_flushes == 0


class TestValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            TLB(Clock(), DEFAULT_COST_MODEL, capacity=0)
