"""TLB behaviour: caching, capacity, flush and outcome accounting."""

import pytest

from repro.hw.cycles import Clock, DEFAULT_COST_MODEL
from repro.hw.tlb import TLB, TlbEntry


@pytest.fixture
def tlb():
    return TLB(Clock(), DEFAULT_COST_MODEL, capacity=4)


def entry(n):
    return TlbEntry(frame_number=n, prot=0x3, pkey=0)


class TestProbeFill:
    def test_miss_then_hit(self, tlb):
        assert tlb.probe(1) is None
        tlb.record_walk_miss()
        tlb.fill(1, entry(1))
        assert tlb.probe(1) == entry(1)
        tlb.record_hit()
        assert tlb.stats.misses == 1
        assert tlb.stats.walks == 1
        assert tlb.stats.hits == 1

    def test_probe_records_nothing(self, tlb):
        tlb.probe(1)
        tlb.fill(1, entry(1))
        tlb.probe(1)
        assert tlb.stats.hits == 0
        assert tlb.stats.misses == 0
        assert tlb.stats.unmapped_misses == 0

    def test_unmapped_miss_is_not_a_walk(self, tlb):
        # Regression (stats-drift bugfix): a probe miss where the page
        # turns out not to exist must not inflate ``misses`` — no page
        # walk is ever charged for it, so misses would diverge from
        # walks.
        assert tlb.probe(7) is None
        tlb.record_unmapped_miss()
        assert tlb.stats.misses == 0
        assert tlb.stats.walks == 0
        assert tlb.stats.unmapped_misses == 1

    def test_capacity_evicts_lru(self, tlb):
        for vpn in range(4):
            tlb.fill(vpn, entry(vpn))
        tlb.probe(0)               # refresh vpn 0
        tlb.fill(4, entry(4))      # evicts vpn 1 (LRU)
        assert tlb.probe(1) is None
        assert tlb.probe(0) is not None
        assert tlb.probe(4) is not None

    def test_refill_same_vpn_replaces(self, tlb):
        tlb.fill(1, entry(1))
        tlb.fill(1, entry(99))
        assert tlb.probe(1).frame_number == 99
        assert len(tlb) == 1

    def test_update_only_touches_resident(self, tlb):
        tlb.update(5, entry(5))
        assert tlb.probe(5) is None
        tlb.fill(5, entry(5))
        tlb.update(5, entry(50))
        assert tlb.probe(5).frame_number == 50
        assert len(tlb) == 1


class TestFlush:
    def test_full_flush_empties_and_charges(self, tlb):
        tlb.fill(1, entry(1))
        clock_before = tlb._clock.now
        tlb.flush()
        assert len(tlb) == 0
        assert tlb.stats.full_flushes == 1
        assert tlb.stats.noop_flushes == 0
        assert tlb._clock.now - clock_before == pytest.approx(
            DEFAULT_COST_MODEL.tlb_flush_full)

    def test_empty_flush_counted_as_noop(self, tlb):
        # Regression (stats-drift bugfix): flushing an empty TLB still
        # executes (and charges) the flush instruction, but it must be
        # accounted as a no-op, not as a flush that invalidated
        # translations.  Pre-fix code counted full_flushes == 1 here.
        clock_before = tlb._clock.now
        tlb.flush()
        assert tlb.stats.full_flushes == 0
        assert tlb.stats.noop_flushes == 1
        assert tlb._clock.now - clock_before == pytest.approx(
            DEFAULT_COST_MODEL.tlb_flush_full)

    def test_invalidate_single_page(self, tlb):
        tlb.fill(1, entry(1))
        tlb.fill(2, entry(2))
        tlb.invalidate_page(1)
        assert tlb.probe(1) is None
        assert tlb.probe(2) is not None
        assert tlb.stats.page_invalidations == 1

    def test_invalidate_absent_page_is_harmless(self, tlb):
        tlb.invalidate_page(42)
        assert tlb.stats.page_invalidations == 1

    def test_invalidate_range_batches_one_charge(self, tlb):
        tlb.fill(1, entry(1))
        tlb.fill(2, entry(2))
        tlb.fill(3, entry(3))
        clock_before = tlb._clock.now
        tlb.invalidate_range([1, 2], charge_pages=5)
        assert tlb.probe(1) is None
        assert tlb.probe(2) is None
        assert tlb.probe(3) is not None
        # Range-proportional cost: 5 INVLPGs charged though only two
        # translations were resident.
        assert tlb.stats.page_invalidations == 5
        assert tlb._clock.now - clock_before == pytest.approx(
            5 * DEFAULT_COST_MODEL.tlb_flush_page)

    def test_invalidate_range_zero_pages_charges_nothing(self, tlb):
        clock_before = tlb._clock.now
        tlb.invalidate_range([], charge_pages=0)
        assert tlb._clock.now == clock_before
        assert tlb.stats.page_invalidations == 0

    def test_stats_reset(self, tlb):
        tlb.fill(1, entry(1))
        tlb.probe(1)
        tlb.record_hit()
        tlb.flush()
        tlb.stats.reset()
        assert tlb.stats.hits == 0
        assert tlb.stats.full_flushes == 0
        assert tlb.stats.noop_flushes == 0


class TestMmResidency:
    """The per-core mm_cpumask analogue: which page tables may have
    translations resident (the shootdown targeting predicate)."""

    def test_fill_records_the_stamping_table(self, tlb):
        table = object()
        assert not tlb.may_hold(table)
        tlb.fill(1, TlbEntry(frame_number=1, prot=0x3, pkey=0,
                             generation=0, table=table))
        assert tlb.may_hold(table)

    def test_unstamped_entries_record_nothing(self, tlb):
        tlb.fill(1, entry(1))          # legacy entry, table=None
        assert not tlb.may_hold(None)

    def test_update_and_note_table_record_residency(self, tlb):
        table = object()
        tlb.fill(1, entry(1))
        tlb.update(1, TlbEntry(frame_number=1, prot=0x3, pkey=0,
                               generation=0, table=table))
        assert tlb.may_hold(table)
        other = object()
        tlb.note_table(other)          # fast-path restamp bypasses fill
        assert tlb.may_hold(other)

    def test_residency_is_sticky_across_eviction_and_invlpg(self, tlb):
        # Conservative like mm_cpumask: LRU eviction and INVLPG do not
        # retract residency — only a full flush does.
        table = object()
        tlb.fill(0, TlbEntry(frame_number=0, prot=0x3, pkey=0,
                             generation=0, table=table))
        tlb.invalidate_page(0)
        assert tlb.may_hold(table)
        tlb.fill(0, TlbEntry(frame_number=0, prot=0x3, pkey=0,
                             generation=0, table=table))
        for vpn in range(1, 5):
            tlb.fill(vpn, entry(vpn))  # capacity 4: evicts vpn 0
        assert tlb.probe(0) is None
        assert tlb.may_hold(table)

    def test_full_flush_clears_residency(self, tlb):
        table = object()
        tlb.fill(1, TlbEntry(frame_number=1, prot=0x3, pkey=0,
                             generation=0, table=table))
        tlb.flush()
        assert not tlb.may_hold(table)


class TestValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            TLB(Clock(), DEFAULT_COST_MODEL, capacity=0)
