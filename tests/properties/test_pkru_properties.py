"""Property-based tests for the PKRU value type."""

from hypothesis import given, strategies as st

from repro.consts import NUM_PKEYS
from repro.hw.pkru import (
    KEY_RIGHTS_ALL,
    KEY_RIGHTS_NONE,
    KEY_RIGHTS_READ,
    PKRU,
)

keys = st.integers(min_value=0, max_value=NUM_PKEYS - 1)
rights = st.sampled_from([KEY_RIGHTS_ALL, KEY_RIGHTS_READ,
                          KEY_RIGHTS_NONE])
pkru_values = st.integers(min_value=0, max_value=(1 << 32) - 1)


@given(pkru_values, keys, rights)
def test_with_rights_is_idempotent(value, key, r):
    once = PKRU(value).with_rights(key, r)
    assert once.with_rights(key, r) == once


@given(pkru_values, keys, rights)
def test_with_rights_sets_exactly_the_requested_rights(value, key, r):
    assert PKRU(value).with_rights(key, r).rights(key) == r


@given(pkru_values, keys, rights, keys, rights)
def test_updates_to_distinct_keys_commute(value, k1, r1, k2, r2):
    if k1 == k2:
        return
    a = PKRU(value).with_rights(k1, r1).with_rights(k2, r2)
    b = PKRU(value).with_rights(k2, r2).with_rights(k1, r1)
    assert a == b


@given(pkru_values, keys, rights, keys)
def test_update_leaves_other_keys_untouched(value, key, r, other):
    if key == other:
        return
    before = PKRU(value)
    after = before.with_rights(key, r)
    assert after.rights(other) == before.rights(other)


@given(pkru_values, keys)
def test_write_implies_read(value, key):
    pkru = PKRU(value)
    if pkru.can_write(key):
        assert pkru.can_read(key)


@given(pkru_values)
def test_value_roundtrips_through_rights(value):
    pkru = PKRU(value)
    rebuilt = PKRU(0)
    for key in range(NUM_PKEYS):
        rebuilt = rebuilt.with_rights(key, pkru.rights(key))
    assert rebuilt == pkru


@given(pkru_values, keys, rights)
def test_result_stays_in_32_bits(value, key, r):
    assert 0 <= PKRU(value).with_rights(key, r).value < (1 << 32)
