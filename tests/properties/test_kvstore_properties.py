"""Property-based tests for the slab allocator and hash table."""

from hypothesis import given, settings, strategies as st

from repro import Kernel
from repro.apps.kvstore.hashtable import HashTable
from repro.apps.kvstore.slab import SLAB_BYTES, SlabAllocator
from repro.consts import PROT_READ, PROT_WRITE
from repro.errors import MpkError

RW = PROT_READ | PROT_WRITE


# ---------------------------------------------------------------------------
# Slab allocator.
# ---------------------------------------------------------------------------

sizes = st.lists(st.integers(min_value=1, max_value=200_000),
                 min_size=1, max_size=60)


@given(sizes)
@settings(max_examples=50, deadline=None)
def test_slab_chunks_never_overlap(item_sizes):
    slab = SlabAllocator(0x10000000, 8 * SLAB_BYTES)
    spans = []
    for size in item_sizes:
        try:
            addr = slab.alloc(size)
        except MpkError:
            continue
        spans.append((addr, addr + slab.chunk_size_of(addr)))
    spans.sort()
    for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
        assert a1 <= b0


@given(sizes)
@settings(max_examples=50, deadline=None)
def test_slab_chunks_stay_in_region_and_fit(item_sizes):
    base, region = 0x10000000, 8 * SLAB_BYTES
    slab = SlabAllocator(base, region)
    for size in item_sizes:
        try:
            addr = slab.alloc(size)
        except MpkError:
            continue
        chunk = slab.chunk_size_of(addr)
        assert chunk >= size
        assert base <= addr and addr + chunk <= base + region


@given(sizes, st.data())
@settings(max_examples=50, deadline=None)
def test_slab_free_then_alloc_reuses_class_chunks(item_sizes, data):
    slab = SlabAllocator(0x10000000, 8 * SLAB_BYTES)
    live = []
    for size in item_sizes:
        try:
            live.append((slab.alloc(size), size))
        except MpkError:
            continue
        if live and data.draw(st.booleans()):
            addr, _ = live.pop(data.draw(
                st.integers(0, len(live) - 1)))
            slab.free(addr)
    assert slab.allocated_chunks() == len(live)


# ---------------------------------------------------------------------------
# Hash table (over the real simulated memory).
# ---------------------------------------------------------------------------

kv_ops = st.lists(
    st.tuples(st.sampled_from(["set", "get", "delete"]),
              st.integers(0, 15),                       # key id
              st.binary(min_size=0, max_size=300)),     # value
    max_size=50,
)


@given(kv_ops)
@settings(max_examples=40, deadline=None)
def test_hashtable_matches_a_dict(ops):
    kernel = Kernel()
    process = kernel.create_process()
    task = process.main_task
    slab_base = kernel.sys_mmap(task, 2 * SLAB_BYTES, RW)
    bucket_base = kernel.sys_mmap(task, 4096, RW)
    slab = SlabAllocator(slab_base, 2 * SLAB_BYTES)
    # Tiny bucket count to force chains.
    table = HashTable(bucket_base, 4, slab)
    model: dict[bytes, bytes] = {}
    for op, key_id, value in ops:
        key = b"key-%d" % key_id
        if op == "set":
            table.assoc_insert(task, key, value)
            model[key] = value
        elif op == "get":
            assert table.assoc_find(task, key) == model.get(key)
        else:
            table.assoc_delete(task, key, missing_ok=True)
            model.pop(key, None)
    # Final audit.
    for key, value in model.items():
        assert table.assoc_find(task, key) == value
    assert table.item_count == len(model)
    assert slab.allocated_chunks() == len(model)
