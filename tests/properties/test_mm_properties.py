"""Property-based tests for the address space: VMA/PTE consistency."""

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.consts import (
    PAGE_SIZE,
    PROT_EXEC,
    PROT_NONE,
    PROT_READ,
    PROT_WRITE,
    page_number,
)
from repro.errors import KernelError
from repro.hw.machine import Machine
from repro.kernel.mm import MM

PROTS = [PROT_NONE, PROT_READ, PROT_READ | PROT_WRITE,
         PROT_READ | PROT_EXEC, PROT_READ | PROT_WRITE | PROT_EXEC]


class AddressSpaceMachine(RuleBasedStateMachine):
    """Random mmap/mprotect/munmap with a shadow model of each page."""

    def __init__(self):
        super().__init__()
        self.mm = MM(Machine(num_cores=1, memory_bytes=1 << 26))
        # Shadow model: vpn -> (prot, pkey).
        self.model: dict[int, tuple[int, int]] = {}

    # ------------------------------------------------------------------

    @rule(pages=st.integers(1, 8), prot=st.sampled_from(PROTS))
    def mmap(self, pages, prot):
        try:
            addr, stats = self.mm.mmap(pages * PAGE_SIZE, prot)
        except KernelError:
            return
        for i in range(pages):
            self.model[page_number(addr) + i] = (prot, 0)

    @precondition(lambda self: self.model)
    @rule(data=st.data(), prot=st.sampled_from(PROTS),
          pkey=st.one_of(st.none(), st.integers(1, 15)))
    def protect(self, data, prot, pkey):
        vpns = sorted(self.model)
        start = data.draw(st.sampled_from(vpns))
        length = data.draw(st.integers(1, 4))
        # Clip to a contiguously-mapped run (mprotect over holes is
        # ENOMEM; we test the success path here).
        run = [start]
        for vpn in range(start + 1, start + length):
            if vpn in self.model:
                run.append(vpn)
            else:
                break
        self.mm.protect(run[0] * PAGE_SIZE, len(run) * PAGE_SIZE, prot,
                        pkey=pkey)
        for vpn in run:
            old_prot, old_pkey = self.model[vpn]
            self.model[vpn] = (prot,
                               old_pkey if pkey is None else pkey)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def munmap(self, data):
        vpns = sorted(self.model)
        start = data.draw(st.sampled_from(vpns))
        length = data.draw(st.integers(1, 4))
        run = [start]
        for vpn in range(start + 1, start + length):
            if vpn in self.model:
                run.append(vpn)
            else:
                break
        self.mm.munmap(run[0] * PAGE_SIZE, len(run) * PAGE_SIZE)
        for vpn in run:
            del self.model[vpn]

    # ------------------------------------------------------------------

    @invariant()
    def ptes_match_the_shadow_model(self):
        assert self.mm.total_mapped_pages() == len(self.model)
        for vpn, (prot, pkey) in self.model.items():
            entry = self.mm.page_table.lookup(vpn)
            assert entry is not None
            assert entry.prot == prot, hex(vpn * PAGE_SIZE)
            assert entry.pkey == pkey

    @invariant()
    def vmas_are_sorted_and_disjoint(self):
        vmas = list(self.mm.vmas)
        for left, right in zip(vmas, vmas[1:]):
            assert left.end <= right.start

    @invariant()
    def vma_pages_are_exactly_the_mapped_pages(self):
        covered = set()
        for vma in self.mm.vmas:
            for vpn in range(page_number(vma.start),
                             page_number(vma.end)):
                covered.add(vpn)
        assert covered == set(self.model)

TestAddressSpace = AddressSpaceMachine.TestCase
TestAddressSpace.settings = settings(max_examples=30,
                                     stateful_step_count=30,
                                     deadline=None)
