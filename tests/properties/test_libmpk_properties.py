"""Stateful property test: libmpk's visible protection state always
matches an access-control oracle.

The oracle tracks, per (thread, group), what the libmpk API history
promises: domain grants from mpk_begin/mpk_end are thread-local;
mpk_mprotect permissions are global; everything else is sealed.  After
every step, actual MMU behaviour (reads and writes through each
thread) must agree with the oracle exactly — both allowed accesses
succeeding and denied accesses faulting.
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.consts import PAGE_SIZE, PROT_NONE, PROT_READ, PROT_WRITE
from repro.errors import MachineFault, MpkKeyExhaustion
from repro import Kernel, Libmpk, Machine

RW = PROT_READ | PROT_WRITE
GROUP_VKEYS = [100, 101, 102]
N_THREADS = 2


class LibmpkMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        kernel = Kernel(Machine(num_cores=8))
        self.process = kernel.create_process()
        self.tasks = [self.process.main_task]
        for _ in range(N_THREADS - 1):
            task = self.process.spawn_task()
            kernel.scheduler.schedule(task, charge=False)
            self.tasks.append(task)
        self.lib = Libmpk(self.process)
        self.lib.mpk_init(self.tasks[0], evict_rate=1.0)
        self.addrs = {}
        # Oracle state.
        self.domain_grants = {}   # (tid, vkey) -> prot
        self.global_prot = {}     # vkey -> prot (None = sealed)
        for vkey in GROUP_VKEYS:
            self.addrs[vkey] = self.lib.mpk_mmap(
                self.tasks[0], vkey, PAGE_SIZE, RW)
            self.global_prot[vkey] = None

    # -- rules ----------------------------------------------------------

    tids = st.integers(0, N_THREADS - 1)
    vkeys = st.sampled_from(GROUP_VKEYS)
    prots = st.sampled_from([PROT_READ, RW])

    @rule(tid=tids, vkey=vkeys, prot=prots)
    def begin(self, tid, vkey, prot):
        task = self.tasks[tid]
        if (task.tid, vkey) in self.domain_grants:
            return  # no nested begin in this model
        try:
            self.lib.mpk_begin(task, vkey, prot)
        except MpkKeyExhaustion:
            return
        self.domain_grants[(task.tid, vkey)] = prot
        # Loading a group for domain use invalidates any global grant
        # (page bits move to the group's creation prot; PKRU gates).
        self.global_prot[vkey] = None

    @rule(tid=tids, vkey=vkeys)
    def end(self, tid, vkey):
        task = self.tasks[tid]
        if (task.tid, vkey) not in self.domain_grants:
            return
        self.lib.mpk_end(task, vkey)
        del self.domain_grants[(task.tid, vkey)]

    @rule(tid=tids, vkey=vkeys,
          prot=st.sampled_from([PROT_NONE, PROT_READ, RW]))
    def mprotect(self, tid, vkey, prot):
        if any(g_vkey == vkey for _, g_vkey in self.domain_grants):
            return  # pinned groups stay under domain control
        self.lib.mpk_mprotect(self.tasks[tid], vkey, prot)
        self.global_prot[vkey] = prot
        # A global change supersedes stale thread-local grants.
        for key in [k for k in self.domain_grants if k[1] == vkey]:
            del self.domain_grants[key]

    # -- the oracle check -----------------------------------------------

    def _expected(self, task, vkey) -> tuple[bool, bool]:
        """(can_read, can_write) per the API history."""
        grant = self.domain_grants.get((task.tid, vkey))
        if grant is not None:
            return True, bool(grant & PROT_WRITE)
        g = self.global_prot[vkey]
        if g is None:
            return False, False
        return bool(g & PROT_READ), bool(g & PROT_WRITE)

    @invariant()
    def mmu_agrees_with_oracle(self):
        for task in self.tasks:
            for vkey in GROUP_VKEYS:
                addr = self.addrs[vkey]
                can_read, can_write = self._expected(task, vkey)
                readable = task.try_read(addr, 1) is not None
                assert readable == can_read, (
                    f"tid={task.tid} vkey={vkey}: read "
                    f"{'allowed' if readable else 'denied'}, oracle "
                    f"says {'allowed' if can_read else 'denied'}")
                try:
                    task.write(addr, b"x")
                    writable = True
                except MachineFault:
                    writable = False
                assert writable == can_write, (
                    f"tid={task.tid} vkey={vkey}: write mismatch")


TestLibmpk = LibmpkMachine.TestCase
TestLibmpk.settings = settings(max_examples=25,
                               stateful_step_count=25,
                               deadline=None)
