"""Property-based tests for the vkey→pkey cache."""

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.keycache import EVICTION_POLICIES, KeyCache
from repro.errors import MpkKeyExhaustion

HW_KEYS = [1, 2, 3, 4, 5]


class KeyCacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cache = KeyCache(list(HW_KEYS), evict_rate=1.0)
        self.bound: dict[int, int] = {}   # vkey -> pkey (shadow)
        self.reserved: set[int] = set()
        self.next_vkey = 100

    @rule()
    def assign_new_vkey(self):
        vkey = self.next_vkey
        self.next_vkey += 1
        pkey = self.cache.assign_free(vkey)
        if pkey is None:
            assert len(self.bound) + len(self.reserved) == len(HW_KEYS)
        else:
            self.bound[vkey] = pkey

    @precondition(lambda self: self.bound)
    @rule(data=st.data())
    def lookup_hit(self, data):
        vkey = data.draw(st.sampled_from(sorted(self.bound)))
        assert self.cache.lookup(vkey) == self.bound[vkey]

    @rule(vkey=st.integers(10_000, 10_050))
    def lookup_miss(self, vkey):
        assert self.cache.lookup(vkey) is None

    @precondition(lambda self: self.bound)
    @rule()
    def evict_and_rebind(self):
        victim = self.cache.choose_victim(lambda v: True)
        pkey = self.cache.evict(victim)
        assert self.bound.pop(victim) == pkey
        vkey = self.next_vkey
        self.next_vkey += 1
        self.cache.bind(vkey, pkey)
        self.bound[vkey] = pkey

    @precondition(lambda self: self.bound)
    @rule(data=st.data())
    def release(self, data):
        vkey = data.draw(st.sampled_from(sorted(self.bound)))
        self.cache.release(vkey)
        del self.bound[vkey]

    @rule()
    def reserve(self):
        try:
            pkey = self.cache.reserve_free_key()
        except MpkKeyExhaustion:
            assert len(self.bound) + len(self.reserved) == len(HW_KEYS)
            return
        self.reserved.add(pkey)

    @precondition(lambda self: self.reserved)
    @rule(data=st.data())
    def unreserve(self, data):
        pkey = data.draw(st.sampled_from(sorted(self.reserved)))
        self.cache.unreserve(pkey)
        self.reserved.remove(pkey)

    # ------------------------------------------------------------------

    @invariant()
    def mapping_is_injective(self):
        pkeys = list(self.bound.values())
        assert len(pkeys) == len(set(pkeys))

    @invariant()
    def matches_shadow(self):
        assert self.cache.in_use == len(self.bound)
        for vkey, pkey in self.bound.items():
            assert self.cache.peek(vkey) == pkey

    @invariant()
    def reserved_keys_never_bound(self):
        assert not (set(self.bound.values())
                    & set(self.cache.reserved_keys))
        assert set(self.cache.reserved_keys) == self.reserved

    @invariant()
    def never_exceeds_hardware(self):
        assert (self.cache.in_use + len(self.reserved)) <= len(HW_KEYS)


TestKeyCache = KeyCacheMachine.TestCase
TestKeyCache.settings = settings(max_examples=40,
                                 stateful_step_count=40,
                                 deadline=None)


def _policy_machine(policy_name: str):
    """A per-policy state machine: random interleavings of the full
    cache op set, with pinned-vkey vetoes, checking that *every*
    registered policy preserves the partition invariant and never
    evicts a pinned vkey or a reserved key."""

    class PolicyPartitionMachine(RuleBasedStateMachine):
        def __init__(self):
            super().__init__()
            self.cache = KeyCache(list(HW_KEYS), evict_rate=1.0,
                                  policy=policy_name, seed=11)
            if policy_name == "cost-aware":
                # Deterministic synthetic pricing so the cost path
                # (choose_victim_cost) actually runs in the sweep.
                self.cache.victim_cost = lambda cands: [
                    float((v * 2654435761) % 97) for v in cands]
            self.bound: dict[int, int] = {}   # vkey -> pkey (shadow)
            self.reserved: set[int] = set()
            self.pinned: set[int] = set()
            self.next_vkey = 100

        @rule()
        def assign_new_vkey(self):
            vkey = self.next_vkey
            self.next_vkey += 1
            pkey = self.cache.assign_free(vkey)
            if pkey is None:
                assert (len(self.bound) + len(self.reserved)
                        == len(HW_KEYS))
            else:
                self.bound[vkey] = pkey

        @precondition(lambda self: self.bound)
        @rule(data=st.data())
        def lookup_hit(self, data):
            vkey = data.draw(st.sampled_from(sorted(self.bound)))
            assert self.cache.lookup(vkey) == self.bound[vkey]

        @rule(vkey=st.integers(10_000, 10_050))
        def lookup_miss(self, vkey):
            assert self.cache.lookup(vkey) is None

        @precondition(lambda self: self.bound)
        @rule(data=st.data())
        def pin(self, data):
            self.pinned.add(
                data.draw(st.sampled_from(sorted(self.bound))))

        @precondition(lambda self: self.pinned)
        @rule(data=st.data())
        def unpin(self, data):
            self.pinned.discard(
                data.draw(st.sampled_from(sorted(self.pinned))))

        @precondition(lambda self: self.bound)
        @rule()
        def evict_and_rebind(self):
            try:
                victim = self.cache.choose_victim(
                    lambda v: v not in self.pinned)
            except MpkKeyExhaustion:
                assert all(v in self.pinned for v in self.bound)
                return
            assert victim not in self.pinned
            pkey = self.cache.evict(victim)
            assert pkey not in self.cache.reserved_keys
            assert self.bound.pop(victim) == pkey
            vkey = self.next_vkey
            self.next_vkey += 1
            self.cache.bind(vkey, pkey)
            self.bound[vkey] = pkey

        @precondition(lambda self: set(self.bound) - self.pinned)
        @rule(data=st.data())
        def release(self, data):
            vkey = data.draw(st.sampled_from(
                sorted(set(self.bound) - self.pinned)))
            self.cache.release(vkey)
            del self.bound[vkey]

        @rule()
        def reserve(self):
            try:
                pkey = self.cache.reserve_free_key()
            except MpkKeyExhaustion:
                assert (len(self.bound) + len(self.reserved)
                        == len(HW_KEYS))
                return
            self.reserved.add(pkey)

        @precondition(lambda self: self.reserved)
        @rule(data=st.data())
        def unreserve(self, data):
            pkey = data.draw(st.sampled_from(sorted(self.reserved)))
            self.cache.unreserve(pkey)
            self.reserved.remove(pkey)

        # --------------------------------------------------------------

        @invariant()
        def partition_holds(self):
            assert self.cache.check_partition() is None

        @invariant()
        def counters_hold(self):
            assert self.cache.check_counters() is None

        @invariant()
        def matches_shadow(self):
            assert self.cache.in_use == len(self.bound)
            for vkey, pkey in self.bound.items():
                assert self.cache.peek(vkey) == pkey

        @invariant()
        def reserved_keys_never_bound(self):
            assert not (set(self.bound.values())
                        & set(self.cache.reserved_keys))
            assert set(self.cache.reserved_keys) == self.reserved

    PolicyPartitionMachine.__name__ = (
        f"PolicyPartitionMachine_{policy_name}")
    case = PolicyPartitionMachine.TestCase
    case.settings = settings(max_examples=25, stateful_step_count=40,
                             deadline=None)
    return case


for _policy in EVICTION_POLICIES:
    globals()[f"TestPolicyPartition_{_policy.replace('-', '_')}"] = (
        _policy_machine(_policy))
del _policy


def test_eviction_rate_long_run_frequency():
    """Over N misses, the number of evict decisions is floor(N*rate)."""
    for rate in (0.0, 0.1, 1 / 3, 0.5, 0.75, 1.0):
        cache = KeyCache([1], evict_rate=rate)
        decisions = sum(cache.should_evict_on_miss()
                        for _ in range(1000))
        assert decisions == int(1000 * rate) or \
            abs(decisions - 1000 * rate) < 1
