"""Overlay (bulk) PTE updates must be observationally identical to
eager per-page updates — the correctness condition for the Figure-14
fast path."""

from hypothesis import given, settings, strategies as st

from repro.consts import PROT_READ, PROT_WRITE
from repro.hw.machine import Machine
from repro.hw.paging import PageTable

N_PAGES = 32
PROTS = st.integers(min_value=0, max_value=7)
PKEYS = st.one_of(st.none(), st.integers(0, 15))

# An operation: (kind, start, end, prot, pkey)
ops = st.lists(
    st.tuples(
        st.sampled_from(["bulk", "eager"]),
        st.integers(0, N_PAGES - 1),
        st.integers(1, N_PAGES),
        PROTS,
        PKEYS,
    ),
    max_size=25,
)


def _build_tables():
    machine = Machine(num_cores=1, memory_bytes=1 << 24)
    subject, reference = PageTable(), PageTable()
    for vpn in range(N_PAGES):
        frame = machine.memory.alloc_frame()
        subject.map(vpn, frame, PROT_READ | PROT_WRITE)
        reference.map(vpn, machine.memory.alloc_frame(),
                      PROT_READ | PROT_WRITE)
    return subject, reference


@settings(max_examples=60, deadline=None)
@given(ops)
def test_bulk_updates_equal_eager_updates(operations):
    subject, reference = _build_tables()
    for kind, start, length, prot, pkey in operations:
        end = min(start + length, N_PAGES)
        if kind == "bulk":
            subject.bulk_update(start, end, prot=prot, pkey=pkey)
        else:
            for vpn in range(start, end):
                subject.set_prot(vpn, prot)
                if pkey is not None:
                    subject.set_pkey(vpn, pkey)
        # The reference model always applies eagerly.
        for vpn in range(start, end):
            reference.set_prot(vpn, prot)
            if pkey is not None:
                reference.set_pkey(vpn, pkey)
    for vpn in range(N_PAGES):
        got = subject.lookup(vpn)
        want = reference.lookup(vpn)
        assert got.prot == want.prot, f"prot mismatch at vpn {vpn}"
        assert got.pkey == want.pkey, f"pkey mismatch at vpn {vpn}"


@settings(max_examples=40, deadline=None)
@given(ops, st.integers(0, N_PAGES - 1))
def test_unmap_after_overlays_sees_final_attributes(operations, victim):
    subject, reference = _build_tables()
    for kind, start, length, prot, pkey in operations:
        end = min(start + length, N_PAGES)
        subject.bulk_update(start, end, prot=prot, pkey=pkey)
        for vpn in range(start, end):
            reference.set_prot(vpn, prot)
            if pkey is not None:
                reference.set_pkey(vpn, pkey)
    got = subject.unmap(victim)
    want = reference.lookup(victim)
    assert got.prot == want.prot
    assert got.pkey == want.pkey


@settings(max_examples=40, deadline=None)
@given(ops)
def test_pages_with_pkey_agrees_with_reference(operations):
    subject, reference = _build_tables()
    for kind, start, length, prot, pkey in operations:
        end = min(start + length, N_PAGES)
        subject.bulk_update(start, end, prot=prot, pkey=pkey)
        for vpn in range(start, end):
            reference.set_prot(vpn, prot)
            if pkey is not None:
                reference.set_pkey(vpn, pkey)
    for pkey in range(16):
        assert subject.pages_with_pkey(pkey) == \
            reference.pages_with_pkey(pkey)


def test_new_mappings_ignore_existing_overlays():
    machine = Machine(num_cores=1, memory_bytes=1 << 24)
    table = PageTable()
    table.map(0, machine.memory.alloc_frame(), PROT_READ)
    table.bulk_update(0, 100, prot=0, pkey=7)  # covers future vpn 50
    table.map(50, machine.memory.alloc_frame(), PROT_READ | PROT_WRITE)
    entry = table.lookup(50)
    assert entry.prot == PROT_READ | PROT_WRITE
    assert entry.pkey == 0
    # The pre-existing page did absorb the overlay.
    assert table.lookup(0).prot == 0
    assert table.lookup(0).pkey == 7
