"""The MMU fast path must be observationally invisible.

Random interleavings of mmap/munmap/mprotect/pkey_mprotect/pkey_set
and data accesses across two cores are run twice —
``mmu_fast_path=True`` and ``False`` — and must produce identical
per-op outcomes (bytes or fault class), an identical final
``clock.now``, and identical per-site cycle totals.  A naive eager
reference model (no TLB, no overlays, PTEs applied immediately, PKRU
rights as a flat per-key map) independently predicts every byte and
fault class, including the bytes a partially-faulting write leaves
behind.

The op mix deliberately interleaves every cache-invalidation event the
syscall-side caches react to: mmap/munmap/split/merge (the per-process
protect-VMA cache keys on the tree version) and pkey_set's WRPKRU (the
PKRU-encode memo keys on the base register value) — so a stale hit in
either cache surfaces as an outcome or cycle divergence here.
"""

from hypothesis import given, settings, strategies as st

from repro.consts import (
    PAGE_SIZE,
    PKEY_DISABLE_ACCESS,
    PKEY_DISABLE_WRITE,
    PROT_NONE,
    PROT_READ,
    PROT_WRITE,
    page_number,
)
from repro.errors import MachineFault, PkeyFault, SegmentationFault
from repro.hw.machine import Machine
from repro.kernel.kcore import Kernel

RW = PROT_READ | PROT_WRITE
PROTS = [PROT_NONE, PROT_READ, RW]
KEY_RIGHTS = [0, PKEY_DISABLE_WRITE,
              PKEY_DISABLE_ACCESS | PKEY_DISABLE_WRITE]
N_SLOTS = 3
MAX_PAGES = 3
N_KEYS = 2  # allocated pkeys available to pkey_mprotect

op_strategy = st.one_of(
    st.tuples(st.just("pkey_set"), st.integers(0, N_KEYS - 1),
              st.sampled_from(KEY_RIGHTS)),
    st.tuples(st.just("mmap"), st.integers(0, N_SLOTS - 1),
              st.integers(1, MAX_PAGES)),
    st.tuples(st.just("munmap"), st.integers(0, N_SLOTS - 1)),
    st.tuples(st.just("mprotect"), st.integers(0, N_SLOTS - 1),
              st.sampled_from(PROTS)),
    st.tuples(st.just("pkey_mprotect"), st.integers(0, N_SLOTS - 1),
              st.sampled_from(PROTS), st.integers(0, N_KEYS - 1)),
    st.tuples(st.just("read"), st.integers(0, 1),
              st.integers(0, N_SLOTS - 1),
              st.integers(0, MAX_PAGES * PAGE_SIZE - 1),
              st.integers(1, 2 * PAGE_SIZE)),
    st.tuples(st.just("write"), st.integers(0, 1),
              st.integers(0, N_SLOTS - 1),
              st.integers(0, MAX_PAGES * PAGE_SIZE - 1),
              st.integers(1, 2 * PAGE_SIZE),
              st.integers(0, 255)),
)
ops_strategy = st.lists(op_strategy, max_size=30)


class Run:
    """One simulator instance executing the op sequence."""

    def __init__(self, mmu_fast_path):
        self.kernel = Kernel(Machine(num_cores=2,
                                     mmu_fast_path=mmu_fast_path))
        self.process = self.kernel.create_process()
        self.tasks = [self.process.main_task]
        sibling = self.process.spawn_task()
        self.kernel.scheduler.schedule(sibling, charge=False)
        self.tasks.append(sibling)
        # Keys allocated by the main task: it gains full rights, the
        # sibling's PKRU keeps them denied -> pkey faults to explore.
        self.keys = [self.kernel.sys_pkey_alloc(self.tasks[0])
                     for _ in range(N_KEYS)]
        self.slots = {}  # slot -> (base, npages)

    def apply(self, op):
        """Execute one op; returns a comparable outcome token."""
        kind = op[0]
        try:
            if kind == "pkey_set":
                # Main task only: exercises the PKRU-encode memo and
                # its WRPKRU invalidation without perturbing the
                # sibling's always-denied rights.
                _, key_idx, rights = op
                self.tasks[0].pkey_set(self.keys[key_idx], rights)
                return ("rights", key_idx, rights)
            if kind == "mmap":
                _, slot, npages = op
                if slot in self.slots:
                    return "occupied"
                base = self.kernel.sys_mmap(self.tasks[0],
                                            npages * PAGE_SIZE, RW)
                self.slots[slot] = (base, npages)
                return ("mapped", npages)
            if kind == "munmap":
                _, slot = op
                if slot not in self.slots:
                    return "nothing"
                base, npages = self.slots.pop(slot)
                self.kernel.sys_munmap(self.tasks[0], base,
                                       npages * PAGE_SIZE)
                return "unmapped"
            if kind == "mprotect":
                _, slot, prot = op
                if slot not in self.slots:
                    return "nothing"
                base, npages = self.slots[slot]
                self.kernel.sys_mprotect(self.tasks[0], base,
                                         npages * PAGE_SIZE, prot)
                return "protected"
            if kind == "pkey_mprotect":
                _, slot, prot, key_idx = op
                if slot not in self.slots:
                    return "nothing"
                base, npages = self.slots[slot]
                self.kernel.sys_pkey_mprotect(self.tasks[0], base,
                                              npages * PAGE_SIZE, prot,
                                              self.keys[key_idx])
                return "keyed"
            if kind == "read":
                _, who, slot, offset, length = op
                if slot not in self.slots:
                    return "nothing"
                base, _ = self.slots[slot]
                data = self.tasks[who].read(base + offset, length)
                return ("data", data)
            _, who, slot, offset, length, byte = op
            if slot not in self.slots:
                return "nothing"
            base, _ = self.slots[slot]
            self.tasks[who].write(base + offset, bytes([byte]) * length)
            return "wrote"
        except MachineFault as fault:
            return ("fault", type(fault).__name__,
                    getattr(fault, "unmapped", False))


class Reference:
    """Eager PTE model: immediate attribute updates, flat shadow
    memory, no TLB and no demand-paging visible to the caller."""

    def __init__(self):
        self.slots = {}          # slot -> (base, npages)
        self.pages = {}          # vpn -> {"prot": int, "pkey": int}
        self.bytes = {}          # vpn -> bytearray
        self.key_rights = {}     # key_idx -> main task's rights bits
        self.next_base = None    # mirrors the simulator's mmap cursor

    def _fault_for(self, vpn, who, is_write):
        page = self.pages.get(vpn)
        if page is None:
            return ("fault", "SegmentationFault", True)
        needed = PROT_WRITE if is_write else PROT_READ
        if not page["prot"] & needed:
            return ("fault", "SegmentationFault", False)
        if page["pkey"] != 0:
            # The sibling never gains rights on non-zero keys; the
            # main task's rights follow its pkey_set history.
            if who != 0:
                return ("fault", "PkeyFault", False)
            rights = self.key_rights.get(page["pkey"] - 1, 0)
            if rights & PKEY_DISABLE_ACCESS:
                return ("fault", "PkeyFault", False)
            if is_write and rights & PKEY_DISABLE_WRITE:
                return ("fault", "PkeyFault", False)
        return None

    def read(self, who, addr, length):
        out = bytearray()
        pos = addr
        remaining = length
        while remaining > 0:
            vpn = page_number(pos)
            fault = self._fault_for(vpn, who, is_write=False)
            if fault is not None:
                return fault
            offset = pos % PAGE_SIZE
            chunk = min(remaining, PAGE_SIZE - offset)
            page_bytes = self.bytes.get(vpn)
            if page_bytes is None:
                out += b"\x00" * chunk
            else:
                out += page_bytes[offset:offset + chunk]
            pos += chunk
            remaining -= chunk
        return ("data", bytes(out))

    def write(self, who, addr, data):
        pos = addr
        cursor = 0
        while cursor < len(data):
            vpn = page_number(pos)
            fault = self._fault_for(vpn, who, is_write=True)
            if fault is not None:
                return fault  # bytes before this page stay written
            offset = pos % PAGE_SIZE
            chunk = min(len(data) - cursor, PAGE_SIZE - offset)
            page_bytes = self.bytes.setdefault(vpn,
                                               bytearray(PAGE_SIZE))
            page_bytes[offset:offset + chunk] = \
                data[cursor:cursor + chunk]
            pos += chunk
            cursor += chunk
        return "wrote"

    def apply(self, op, sim_outcome):
        """Mirror ``op``; mapping ops learn addresses from the sim."""
        kind = op[0]
        if kind == "pkey_set":
            _, key_idx, rights = op
            self.key_rights[key_idx] = rights
            return ("rights", key_idx, rights)
        if kind == "mmap":
            _, slot, npages = op
            if slot in self.slots:
                return "occupied"
            # Address choice is the simulator's (deterministic cursor);
            # adopt it rather than re-model gap placement.
            assert sim_outcome == ("mapped", npages)
            return None  # caller registers the base separately
        if kind == "munmap":
            _, slot = op
            if slot not in self.slots:
                return "nothing"
            base, npages = self.slots.pop(slot)
            for vpn in range(page_number(base),
                             page_number(base) + npages):
                self.pages.pop(vpn, None)
                self.bytes.pop(vpn, None)
            return "unmapped"
        if kind == "mprotect":
            _, slot, prot = op
            if slot not in self.slots:
                return "nothing"
            base, npages = self.slots[slot]
            for vpn in range(page_number(base),
                             page_number(base) + npages):
                self.pages[vpn]["prot"] = prot
            return "protected"
        if kind == "pkey_mprotect":
            _, slot, prot, key_idx = op
            if slot not in self.slots:
                return "nothing"
            base, npages = self.slots[slot]
            for vpn in range(page_number(base),
                             page_number(base) + npages):
                self.pages[vpn]["prot"] = prot
                self.pages[vpn]["pkey"] = key_idx + 1  # any nonzero
            return "keyed"
        if kind == "read":
            _, who, slot, offset, length = op
            if slot not in self.slots:
                return "nothing"
            base, _ = self.slots[slot]
            return self.read(who, base + offset, length)
        _, who, slot, offset, length, byte = op
        if slot not in self.slots:
            return "nothing"
        base, _ = self.slots[slot]
        return self.write(who, base + offset, bytes([byte]) * length)

    def register_mmap(self, slot, base, npages):
        self.slots[slot] = (base, npages)
        for vpn in range(page_number(base), page_number(base) + npages):
            self.pages[vpn] = {"prot": RW, "pkey": 0}


@settings(max_examples=25, deadline=None)
@given(ops_strategy)
def test_fast_path_is_observationally_invisible(operations):
    fast, slow = Run(mmu_fast_path=True), Run(mmu_fast_path=False)
    reference = Reference()
    for op in operations:
        out_fast = fast.apply(op)
        out_slow = slow.apply(op)
        assert out_fast == out_slow, f"divergence on {op}"
        # Reference-model cross-check (fault class + bytes).  The
        # reference has no pkey-fault/segfault *ordering* subtleties to
        # hide: the simulator checks page bits before PKRU, and so does
        # Reference._fault_for.
        ref_out = reference.apply(op, out_fast)
        if op[0] == "mmap" and ref_out is None:
            if out_fast != "occupied":
                base, npages = fast.slots[op[1]]
                reference.register_mmap(op[1], base, npages)
        else:
            assert ref_out == out_fast, f"reference diverges on {op}"
    # Bit-identical simulated time and attribution.
    assert fast.kernel.clock.now == slow.kernel.clock.now
    assert dict(fast.kernel.machine.obs.aggregator.cycles) == \
        dict(slow.kernel.machine.obs.aggregator.cycles)
    # Both runs satisfy the conservation audit (cycles + MMU counters).
    assert fast.kernel.machine.obs.audit()[0]
    assert slow.kernel.machine.obs.audit()[0]


@settings(max_examples=10, deadline=None)
@given(ops_strategy)
def test_fault_classes_match_reference(operations):
    """Focused re-run asserting only fault classification, with the
    sibling task doing all accesses (maximum pkey-fault exposure)."""
    run = Run(mmu_fast_path=True)
    reference = Reference()
    for op in operations:
        if op[0] in ("read", "write"):
            op = (op[0], 1, *op[2:])  # force the sibling
        out = run.apply(op)
        ref_out = reference.apply(op, out)
        if op[0] == "mmap" and ref_out is None:
            if out != "occupied":
                base, npages = run.slots[op[1]]
                reference.register_mmap(op[1], base, npages)
            continue
        assert ref_out == out, f"reference diverges on {op}"
        if isinstance(out, tuple) and out[0] == "fault":
            assert out[1] in (SegmentationFault.__name__,
                              PkeyFault.__name__)
