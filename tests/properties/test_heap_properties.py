"""Property-based tests for the GroupHeap allocator."""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.heap import ALIGNMENT, GroupHeap
from repro.errors import MpkError

HEAP_BASE = 0x100000
HEAP_SIZE = 1 << 16


@given(st.lists(st.integers(min_value=1, max_value=2000), max_size=40))
def test_live_allocations_never_overlap(sizes):
    heap = GroupHeap(HEAP_BASE, HEAP_SIZE)
    spans = []
    for size in sizes:
        try:
            addr = heap.malloc(size)
        except MpkError:
            continue
        spans.append((addr, addr + size))
    spans.sort()
    for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
        assert a1 <= b0


@given(st.lists(st.integers(min_value=1, max_value=2000),
                min_size=1, max_size=40))
def test_free_all_restores_full_capacity(sizes):
    heap = GroupHeap(HEAP_BASE, HEAP_SIZE)
    addrs = []
    for size in sizes:
        try:
            addrs.append(heap.malloc(size))
        except MpkError:
            pass
    for addr in addrs:
        heap.free(addr)
    assert heap.free_bytes() == HEAP_SIZE
    assert heap.largest_free_chunk() == HEAP_SIZE


class HeapMachine(RuleBasedStateMachine):
    """Stateful fuzz of malloc/free with conservation invariants."""

    def __init__(self):
        super().__init__()
        self.heap = GroupHeap(HEAP_BASE, HEAP_SIZE)
        self.live: list[int] = []

    @rule(size=st.integers(min_value=1, max_value=4096))
    def malloc(self, size):
        try:
            addr = self.heap.malloc(size)
        except MpkError:
            assert self.heap.largest_free_chunk() < \
                (size + ALIGNMENT - 1) & ~(ALIGNMENT - 1)
            return
        assert HEAP_BASE <= addr < HEAP_BASE + HEAP_SIZE
        assert addr % ALIGNMENT == 0
        self.live.append(addr)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free(self, data):
        index = data.draw(st.integers(0, len(self.live) - 1))
        self.heap.free(self.live.pop(index))

    @invariant()
    def conservation(self):
        assert (self.heap.allocated_bytes()
                + self.heap.free_bytes()) == HEAP_SIZE

    @invariant()
    def allocation_count_matches(self):
        assert self.heap.allocation_count() == len(self.live)


TestHeapMachine = HeapMachine.TestCase
TestHeapMachine.settings = settings(max_examples=40,
                                    stateful_step_count=30,
                                    deadline=None)
