"""API fuzzing: random call sequences must never corrupt libmpk state.

Unlike the oracle machine (test_libmpk_properties), this fuzzer allows
*invalid* calls too — double begins, ends without begins, unmaps of
pinned groups, unknown vkeys — and checks that every failure is a
clean, typed exception leaving the internal state consistent.
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.consts import NUM_PKEYS, PAGE_SIZE, PROT_NONE, PROT_READ, \
    PROT_WRITE
from repro.errors import MpkError
from repro import Kernel, Libmpk, Machine

RW = PROT_READ | PROT_WRITE
VKEYS = st.integers(90, 110)
PROTS = st.sampled_from([PROT_NONE, PROT_READ, RW])


class FuzzMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        kernel = Kernel(Machine(num_cores=4))
        self.process = kernel.create_process()
        self.task = self.process.main_task
        self.lib = Libmpk(self.process)
        self.lib.mpk_init(self.task, evict_rate=0.5)

    def _attempt(self, fn):
        try:
            fn()
        except MpkError:
            pass  # clean, typed rejection is fine

    @rule(vkey=VKEYS, pages=st.integers(1, 4), prot=PROTS)
    def mmap(self, vkey, pages, prot):
        self._attempt(lambda: self.lib.mpk_mmap(
            self.task, vkey, pages * PAGE_SIZE, prot))

    @rule(vkey=VKEYS)
    def munmap(self, vkey):
        self._attempt(lambda: self.lib.mpk_munmap(self.task, vkey))

    @rule(vkey=VKEYS, prot=st.sampled_from([PROT_READ, RW]))
    def begin(self, vkey, prot):
        self._attempt(lambda: self.lib.mpk_begin(self.task, vkey, prot))

    @rule(vkey=VKEYS)
    def end(self, vkey):
        self._attempt(lambda: self.lib.mpk_end(self.task, vkey))

    @rule(vkey=VKEYS, prot=PROTS)
    def mprotect(self, vkey, prot):
        self._attempt(lambda: self.lib.mpk_mprotect(self.task, vkey,
                                                    prot))

    @rule(vkey=VKEYS, size=st.integers(1, 8192))
    def malloc(self, vkey, size):
        self._attempt(lambda: self.lib.mpk_malloc(self.task, vkey,
                                                  size))

    @rule(vkey=VKEYS, addr=st.integers(0, 1 << 48))
    def free_bogus(self, vkey, addr):
        self._attempt(lambda: self.lib.mpk_free(self.task, vkey, addr))

    # ------------------------------------------------------------------

    @invariant()
    def cache_is_consistent(self):
        cache = self.lib.cache
        assert cache.in_use <= cache.capacity
        cached = set(cache.cached_vkeys())
        groups = self.lib.groups()
        # Every cached vkey has a group whose pkey matches the binding.
        for vkey in cached:
            assert vkey in groups
            assert groups[vkey].pkey == cache.peek(vkey)
        # Every cached group's binding is mirrored in the cache, and
        # every pinned group is cached.
        for vkey, group in groups.items():
            if group.pkey is not None and not group.exec_only:
                assert cache.peek(vkey) == group.pkey
            if group.pinned:
                assert group.cached

    @invariant()
    def metadata_mirrors_groups(self):
        groups = self.lib.groups()
        assert self.lib.metadata.record_count() == len(groups)
        for vkey, group in groups.items():
            record = self.lib.metadata.user_read_record(self.task, vkey)
            assert record is not None
            assert record[0] == vkey
            assert record[1] == group.pkey
            assert record[2] == len(group.pinned_by)

    @invariant()
    def no_two_groups_share_a_hardware_key(self):
        keys = [g.pkey for g in self.lib.groups().values()
                if g.pkey is not None and not g.exec_only]
        assert len(keys) == len(set(keys))

    @invariant()
    def hardware_key_range_respected(self):
        for group in self.lib.groups().values():
            if group.pkey is not None:
                assert 1 <= group.pkey < NUM_PKEYS


TestFuzz = FuzzMachine.TestCase
TestFuzz.settings = settings(max_examples=40, stateful_step_count=40,
                             deadline=None)
