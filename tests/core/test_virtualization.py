"""Key virtualization: >15 groups, LRU eviction, pinning, exhaustion."""

import pytest

from repro.consts import NUM_PKEYS, PAGE_SIZE, PROT_READ, PROT_WRITE
from repro.errors import MpkKeyExhaustion

RW = PROT_READ | PROT_WRITE
HW_KEYS = NUM_PKEYS - 1  # 15


def make_groups(lib, task, count, base_vkey=100):
    addrs = {}
    for i in range(count):
        vkey = base_vkey + i
        addrs[vkey] = lib.mpk_mmap(task, vkey, PAGE_SIZE, RW)
    return addrs


class TestScalability:
    def test_far_more_groups_than_hardware_keys(self, lib, task):
        """The headline scalability claim: 100 page groups on 15 keys."""
        addrs = make_groups(lib, task, 100)
        for vkey, addr in addrs.items():
            with lib.domain(task, vkey, RW):
                task.write(addr, vkey.to_bytes(4, "little"))
        for vkey, addr in addrs.items():
            with lib.domain(task, vkey, PROT_READ):
                assert task.read(addr, 4) == vkey.to_bytes(4, "little")

    def test_cache_never_exceeds_capacity(self, lib, task):
        make_groups(lib, task, 40)
        for vkey in range(100, 140):
            lib.mpk_begin(task, vkey, RW)
            lib.mpk_end(task, vkey)
            assert lib.cache.in_use <= HW_KEYS

    def test_evicted_group_is_fully_inaccessible(self, lib, task):
        """Evicting a domain group revokes its page permission so no
        thread can slip in while it has no key (§4.2)."""
        addrs = make_groups(lib, task, HW_KEYS + 1)
        # Cycle through all: the first group must get evicted.
        for vkey in addrs:
            lib.mpk_begin(task, vkey, RW)
            lib.mpk_end(task, vkey)
        evicted = next(v for v in addrs if not lib.group(v).cached)
        assert task.try_read(addrs[evicted], 1) is None
        # Even a thread with a fully permissive PKRU cannot read it.
        from repro.hw.pkru import PKRU
        task.wrpkru(PKRU.allow_all().value)
        assert task.try_read(addrs[evicted], 1) is None

    def test_reaccess_after_eviction_reloads_group(self, lib, task):
        addrs = make_groups(lib, task, HW_KEYS + 2)
        first = 100
        with lib.domain(task, first, RW):
            task.write(addrs[first], b"persist")
        for vkey in list(addrs)[1:]:
            lib.mpk_begin(task, vkey, RW)
            lib.mpk_end(task, vkey)
        assert not lib.group(first).cached
        with lib.domain(task, first, PROT_READ):
            assert task.read(addrs[first], 7) == b"persist"


class TestLruPolicy:
    def test_least_recently_used_key_is_evicted(self, lib, task):
        addrs = make_groups(lib, task, HW_KEYS)
        # Touch all groups in order; then touch 100 again so 101 is LRU.
        for vkey in addrs:
            lib.mpk_begin(task, vkey, RW)
            lib.mpk_end(task, vkey)
        lib.mpk_begin(task, 100, RW)
        lib.mpk_end(task, 100)
        lib.mpk_mmap(task, 900, PAGE_SIZE, RW)  # no free key -> uncached
        lib.mpk_begin(task, 900, RW)            # must evict vkey 101
        lib.mpk_end(task, 900)
        assert not lib.group(101).cached
        assert lib.group(100).cached

    def test_pinned_groups_are_never_evicted(self, lib, task):
        addrs = make_groups(lib, task, HW_KEYS)
        lib.mpk_begin(task, 100, RW)  # pin the would-be LRU victim
        lib.mpk_mmap(task, 900, PAGE_SIZE, RW)
        lib.mpk_begin(task, 900, RW)  # evicts 101 instead
        assert lib.group(100).cached
        assert not lib.group(101).cached
        assert task.try_read(addrs[100], 1) == b"\x00"  # still usable
        lib.mpk_end(task, 900)
        lib.mpk_end(task, 100)

    def test_exhaustion_raises_when_all_keys_pinned(self, lib, kernel,
                                                    process, task):
        """§4.2: if all keys are actively used, mpk_begin raises and
        lets the caller decide how to wait."""
        make_groups(lib, task, HW_KEYS)
        for vkey in range(100, 100 + HW_KEYS):
            lib.mpk_begin(task, vkey, RW)
        lib.mpk_mmap(task, 900, PAGE_SIZE, RW)
        with pytest.raises(MpkKeyExhaustion):
            lib.mpk_begin(task, 900, RW)
        # Releasing one unblocks the caller.
        lib.mpk_end(task, 100)
        lib.mpk_begin(task, 900, RW)
        lib.mpk_end(task, 900)
        for vkey in range(101, 100 + HW_KEYS):
            lib.mpk_end(task, vkey)


class TestKeyRebindHygiene:
    def test_stale_rights_do_not_leak_to_new_tenant(self, lib, kernel,
                                                    process, task):
        """When a hardware key moves between groups, rights a sibling
        held for the old tenant must not open the new one — libmpk's
        answer to protection-key use-after-free."""
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)

        make_groups(lib, task, HW_KEYS)
        # Sibling legitimately opens group 100 and keeps rights alive...
        lib.mpk_begin(sibling, 100, RW)
        old_key = lib.group(100).pkey
        lib.mpk_end(sibling, 100)
        # ...then a rogue WRPKRU re-grants itself the raw key.
        from repro.hw.pkru import KEY_RIGHTS_ALL
        sibling.pkey_set(old_key, KEY_RIGHTS_ALL)

        # Key 100's hardware key is reassigned to a brand-new group.
        lib.mpk_mmap(task, 900, PAGE_SIZE, RW)
        # Force group 100 to be the victim (it is LRU after the loop).
        for vkey in range(101, 100 + HW_KEYS):
            lib.mpk_begin(task, vkey, RW)
            lib.mpk_end(task, vkey)
        lib.mpk_begin(task, 900, RW)
        new_addr = lib.group(900).base
        task.write(new_addr, b"new tenant secret")
        assert lib.group(900).pkey == old_key  # key actually moved
        # The sibling's stale rights were quiesced at rebind time.
        assert sibling.try_read(new_addr, 17) is None
        lib.mpk_end(task, 900)

    def test_virtual_keys_do_not_alias_after_reuse(self, lib, task):
        """Protection-key-use-after-free, solved: destroying a group and
        reusing its hardware key never exposes the old group's pages."""
        a = lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        with lib.domain(task, 100, RW):
            task.write(a, b"old secret")
        lib.mpk_munmap(task, 100)
        b = lib.mpk_mmap(task, 200, PAGE_SIZE, RW)
        with lib.domain(task, 200, RW):
            # The new group contains only its own zeroed pages.
            assert task.read(b, 10) == b"\x00" * 10
