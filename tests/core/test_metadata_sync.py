"""Metadata protection (§4.3) and do_pkey_sync (§4.4)."""

import pytest

from repro.consts import PAGE_SIZE, PROT_READ, PROT_WRITE
from repro.core.metadata import RECORD_SIZE
from repro.core.sync import do_pkey_sync
from repro.errors import MpkMetadataTampering, SegmentationFault
from repro.hw.pkru import KEY_RIGHTS_NONE, KEY_RIGHTS_READ
from repro import Libmpk

RW = PROT_READ | PROT_WRITE
G = 100


class TestMetadataRegion:
    def test_user_mapping_is_read_only(self, lib, task):
        lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        addr = lib.metadata.record_user_addr(G)
        assert addr is not None
        # Reading through the user mapping works...
        assert task.read(addr, RECORD_SIZE)
        # ...but an arbitrary-write attacker faults.
        with pytest.raises(SegmentationFault):
            task.write(addr, b"\xff" * RECORD_SIZE)

    def test_kernel_writes_are_user_visible(self, lib, task):
        lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        record = lib.metadata.user_read_record(task, G)
        assert record is not None
        vkey, pkey, pinned, flags = record
        assert vkey == G
        assert pkey == lib.group(G).pkey
        assert pinned == 0

    def test_records_track_pin_counts(self, lib, task):
        lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_begin(task, G, RW)
        assert lib.metadata.user_read_record(task, G)[2] == 1
        lib.mpk_end(task, G)
        assert lib.metadata.user_read_record(task, G)[2] == 0

    def test_removed_records_disappear(self, lib, task):
        lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_munmap(task, G)
        assert lib.metadata.user_read_record(task, G) is None

    def test_region_starts_at_32kb(self, lib):
        assert lib.metadata.capacity_bytes == 32 * 1024

    def test_region_expands_beyond_2048_groups(self, lib, task):
        """32 KB / 16 B = 2048 records before the first expansion."""
        for i in range(lib.metadata.capacity_records + 1):
            lib.mpk_mmap(task, 1000 + i, PAGE_SIZE, RW)
        assert lib.metadata.expansions >= 1
        # Records in the expansion region still resolve.
        assert lib.metadata.user_read_record(
            task, 1000 + 2048)[0] == 1000 + 2048

    def test_memory_overhead_accounting(self, lib, task):
        base = lib.memory_overhead_bytes()
        lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        assert lib.memory_overhead_bytes() == base + 32


class TestCallSiteVerification:
    def test_static_vkeys_enforced(self, kernel, process, task):
        lib = Libmpk(process)
        lib.mpk_init(task, static_vkeys=[G])
        lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        with pytest.raises(MpkMetadataTampering):
            lib.mpk_mmap(task, 999, PAGE_SIZE, RW)

    def test_corrupted_vkey_argument_is_rejected(self, kernel, process,
                                                 task):
        """An attacker who corrupts an in-memory vkey variable cannot
        redirect a call site to a different group."""
        lib = Libmpk(process)
        lib.mpk_init(task, static_vkeys=[G, G + 1])
        lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        corrupted_vkey = 0x41414141
        with pytest.raises(MpkMetadataTampering):
            lib.mpk_begin(task, corrupted_vkey, RW)

    def test_no_registry_means_no_enforcement(self, lib, task):
        lib.mpk_mmap(task, 12345, PAGE_SIZE, RW)  # arbitrary vkey fine


class TestDoPkeySync:
    def test_no_siblings_costs_nothing(self, kernel, process, task):
        before = kernel.clock.now
        assert do_pkey_sync(kernel, task, 3, KEY_RIGHTS_NONE) == 0
        assert kernel.clock.now == before

    def test_updates_every_sibling(self, kernel, process, task):
        running = process.spawn_task()
        kernel.scheduler.schedule(running, charge=False)
        sleeping = process.spawn_task()
        count = do_pkey_sync(kernel, task, 3, KEY_RIGHTS_READ)
        assert count == 2
        assert running.pkru.rights(3) == KEY_RIGHTS_READ  # IPI'd now
        assert sleeping.has_pending_task_work()            # lazy
        kernel.scheduler.schedule(sleeping, charge=False)
        assert sleeping.pkru.rights(3) == KEY_RIGHTS_READ

    def test_cost_scales_with_running_siblings(self, kernel, process,
                                               task, measure):
        costs = kernel.costs
        for _ in range(3):
            kernel.scheduler.schedule(process.spawn_task(), charge=False)
        elapsed = measure(
            lambda: do_pkey_sync(kernel, task, 3, KEY_RIGHTS_NONE))
        expected = (costs.syscall_overhead()
                    + 3 * (costs.task_work_add + costs.resched_ipi
                           + costs.resched_ack_wait + costs.task_work_run))
        assert elapsed == pytest.approx(expected)

    def test_sleeping_siblings_skip_the_ipi(self, kernel, process, task,
                                            measure):
        costs = kernel.costs
        process.spawn_task()  # never scheduled
        elapsed = measure(
            lambda: do_pkey_sync(kernel, task, 3, KEY_RIGHTS_NONE))
        expected = costs.syscall_overhead() + costs.task_work_add
        assert elapsed == pytest.approx(expected)

    def test_other_processes_are_untouched(self, kernel, process, task):
        other = kernel.create_process()
        before = other.main_task.pkru
        do_pkey_sync(kernel, task, 3, KEY_RIGHTS_READ)
        assert other.main_task.pkru == before
