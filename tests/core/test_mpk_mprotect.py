"""mpk_mprotect: global semantics, eviction-rate policy, exec-only."""

import pytest

from repro.consts import (
    PAGE_SIZE,
    PROT_EXEC,
    PROT_NONE,
    PROT_READ,
    PROT_WRITE,
)
from repro.errors import MachineFault, PkeyFault, SegmentationFault
from repro import Libmpk

RW = PROT_READ | PROT_WRITE
G = 100


class TestGlobalSemantics:
    def test_grants_access_to_all_threads(self, lib, kernel, process, task):
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)
        addr = lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G, RW)
        task.write(addr, b"shared")
        assert sibling.read(addr, 6) == b"shared"

    def test_revocation_reaches_running_siblings_immediately(
            self, lib, kernel, process, task):
        """The mprotect-semantics guarantee: when mpk_mprotect returns,
        no thread retains the old permission (§4.4)."""
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)
        addr = lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G, RW)
        sibling.write(addr, b"ok")
        lib.mpk_mprotect(task, G, PROT_READ)
        assert sibling.read(addr, 2) == b"ok"
        with pytest.raises(PkeyFault):
            sibling.write(addr, b"no")

    def test_revocation_reaches_sleeping_threads_via_task_work(
            self, lib, kernel, process, task):
        sleeper = process.spawn_task()
        addr = lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G, RW)
        lib.mpk_mprotect(task, G, PROT_READ)
        assert sleeper.has_pending_task_work()
        kernel.scheduler.schedule(sleeper, charge=False)
        with pytest.raises(PkeyFault):
            sleeper.write(addr, b"no")

    def test_prot_none_blocks_everyone(self, lib, kernel, process, task):
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)
        addr = lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G, RW)
        lib.mpk_mprotect(task, G, PROT_NONE)
        assert task.try_read(addr, 1) is None
        assert sibling.try_read(addr, 1) is None

    def test_widening_permission_later(self, lib, task):
        addr = lib.mpk_mmap(task, G, PAGE_SIZE, PROT_READ)
        lib.mpk_mprotect(task, G, PROT_READ)
        with pytest.raises(MachineFault):
            task.write(addr, b"x")
        lib.mpk_mprotect(task, G, RW)
        task.write(addr, b"x")


class TestHitMissCosts:
    def test_hit_is_an_order_of_magnitude_cheaper_than_mprotect(
            self, lib, kernel, task, measure):
        lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G, RW)  # load
        hit = measure(lambda: lib.mpk_mprotect(task, G, PROT_READ),
                      task=task)
        assert 1094.0 / hit == pytest.approx(12.2, abs=0.2)

    def test_hit_cost_is_independent_of_group_size(self, lib, kernel,
                                                   task, measure):
        lib.mpk_mmap(task, G, 1000 * PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G, RW)
        big = measure(lambda: lib.mpk_mprotect(task, G, PROT_READ),
                      task=task)
        lib.mpk_mmap(task, G + 1, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G + 1, RW)
        small = measure(lambda: lib.mpk_mprotect(task, G + 1, PROT_READ),
                        task=task)
        assert big == pytest.approx(small)

    def test_miss_with_eviction_costs_two_range_updates(
            self, lib, kernel, task, measure):
        """Figure 6b: unset the evicted key, bind the new one."""
        for i in range(15):
            lib.mpk_mmap(task, 200 + i, PAGE_SIZE, RW)
        lib.mpk_mmap(task, G, PAGE_SIZE, RW)  # uncached (keys exhausted)
        miss = measure(lambda: lib.mpk_mprotect(task, G, RW), task=task)
        hit = measure(lambda: lib.mpk_mprotect(task, G, PROT_READ),
                      task=task)
        assert miss > 2 * 1000  # two pkey_mprotect-scale operations
        assert miss > 10 * hit


class TestEvictionRate:
    def _exhaust_keys(self, lib, task):
        for i in range(15):
            lib.mpk_mmap(task, 200 + i, PAGE_SIZE, RW)
            lib.mpk_mprotect(task, 200 + i, RW)

    def test_zero_rate_always_falls_back_to_mprotect(self, kernel,
                                                     process, task):
        lib = Libmpk(process)
        lib.mpk_init(task, evict_rate=0.0)
        self._exhaust_keys(lib, task)
        lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G, RW)
        assert not lib.group(G).cached          # fell back
        assert lib.cache.stats_fallbacks >= 1
        addr = lib.group(G).base
        task.write(addr, b"works via page bits")

    def test_half_rate_alternates(self, kernel, process, task):
        lib = Libmpk(process)
        lib.mpk_init(task, evict_rate=0.5)
        self._exhaust_keys(lib, task)
        outcomes = []
        for i in range(6):
            vkey = 500 + i
            lib.mpk_mmap(task, vkey, PAGE_SIZE, RW)
            lib.mpk_mprotect(task, vkey, RW)
            outcomes.append(lib.group(vkey).cached)
        assert outcomes.count(True) == 3
        assert outcomes.count(False) == 3

    def test_full_rate_always_evicts(self, lib, task):
        self._exhaust_keys(lib, task)
        lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G, RW)
        assert lib.group(G).cached
        assert lib.cache.stats_fallbacks == 0

    def test_fallback_preserves_global_semantics(self, kernel, process,
                                                 task):
        """Even when enforcement falls back to page bits, all threads
        see the same permission — that's the point of mprotect."""
        lib = Libmpk(process)
        lib.mpk_init(task, evict_rate=0.0)
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)
        self._exhaust_keys(lib, task)
        addr = lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G, RW)
        sibling.write(addr, b"ok")
        lib.mpk_mprotect(task, G, PROT_READ)
        with pytest.raises(SegmentationFault):
            sibling.write(addr, b"no")


class TestEvictedGlobalGroups:
    def test_evicted_global_group_keeps_its_permission(self, lib, task):
        """Evicting an mpk_mprotect-managed group moves enforcement to
        page bits without changing the effective permission (§4.2)."""
        addr = lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G, PROT_READ)
        # Force eviction of G by cycling 15 other groups.
        for i in range(15):
            lib.mpk_mmap(task, 200 + i, PAGE_SIZE, RW)
            lib.mpk_mprotect(task, 200 + i, RW)
        assert not lib.group(G).cached
        assert task.read(addr, 1) == b"\x00"       # still readable
        with pytest.raises(SegmentationFault):
            task.write(addr, b"x")                  # still not writable


class TestExecOnlyGroups:
    def test_exec_only_group_uses_reserved_key(self, lib, task):
        lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G, PROT_EXEC)
        assert lib.exec_only_pkey is not None
        assert lib.group(G).pkey == lib.exec_only_pkey
        assert lib.group(G).exec_only

    def test_exec_only_blocks_reads_allows_fetch(self, lib, task):
        addr = lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G, RW)
        task.write(addr, b"\xc3")
        lib.mpk_mprotect(task, G, PROT_EXEC)
        with pytest.raises(PkeyFault):
            task.read(addr, 1)
        assert task.fetch(addr, 1) == b"\xc3"

    def test_exec_only_blocks_sibling_reads_too(self, lib, kernel,
                                                process, task):
        """Unlike raw kernel execute-only memory, libmpk synchronizes
        the denial to every thread (fixing the §3.3 hole)."""
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)
        addr = lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G, PROT_EXEC)
        assert sibling.try_read(addr, 1) is None
        assert sibling.fetch(addr, 1) == b"\x00"

    def test_multiple_exec_only_groups_share_the_reserved_key(self, lib,
                                                              task):
        lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_mmap(task, G + 1, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G, PROT_EXEC)
        lib.mpk_mprotect(task, G + 1, PROT_EXEC)
        assert lib.group(G).pkey == lib.group(G + 1).pkey

    def test_reserved_key_survives_pressure(self, lib, task):
        lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G, PROT_EXEC)
        xo = lib.exec_only_pkey
        for i in range(20):  # heavy churn on the remaining keys
            lib.mpk_mmap(task, 300 + i, PAGE_SIZE, RW)
            lib.mpk_mprotect(task, 300 + i, RW)
        assert lib.group(G).pkey == xo
        assert lib.group(G).exec_only

    def test_reserved_key_released_when_last_exec_group_leaves(self, lib,
                                                               task):
        lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G, PROT_EXEC)
        assert lib.exec_only_pkey is not None
        lib.mpk_mprotect(task, G, RW)
        assert lib.exec_only_pkey is None
        assert not lib.group(G).exec_only

    def test_leaving_exec_only_scrubs_the_reserved_key_from_ptes(
            self, lib, kernel, process, task):
        """A future exec-only group reusing the reserved key must not
        silently adopt pages that left the exec-only state earlier."""
        from repro.consts import page_number
        addr = lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G, PROT_EXEC)
        old_xo = lib.exec_only_pkey
        lib.mpk_mprotect(task, G, RW)           # leave exec-only
        entry = process.page_table.lookup(page_number(addr))
        assert entry.pkey != old_xo              # scrubbed
        task.write(addr, b"normal data again")
        # A brand-new exec-only group must not affect G's pages.
        lib.mpk_mmap(task, G + 1, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G + 1, PROT_EXEC)
        assert task.read(addr, 6) == b"normal"   # unaffected

    def test_begin_on_exec_only_group_is_rejected(self, lib, task):
        from repro.errors import MpkError
        lib.mpk_mmap(task, G, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, G, PROT_EXEC)
        with pytest.raises(MpkError):
            lib.mpk_begin(task, G, RW)
