"""The tracing subsystem: spans, nesting, accounting, detach."""

import pytest

from repro.consts import PAGE_SIZE, PROT_READ, PROT_WRITE
from repro import Libmpk
from repro.trace import KERNEL_OPS, Tracer, attach_tracer, format_trace

RW = PROT_READ | PROT_WRITE


class TestKernelTracing:
    def test_syscalls_are_recorded_with_costs(self, kernel, task):
        tracer = attach_tracer(kernel=kernel)
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_READ)
        tracer.detach()
        assert tracer.count("kernel", "sys_mmap") == 1
        assert tracer.count("kernel", "sys_mprotect") == 1
        mprotect = next(e for e in tracer.events
                        if e.op == "sys_mprotect")
        assert mprotect.cycles == pytest.approx(1094.0)

    def test_detach_restores_originals(self, kernel, task):
        tracer = attach_tracer(kernel=kernel)
        kernel.sys_mmap(task, PAGE_SIZE, RW)
        tracer.detach()
        kernel.sys_mmap(task, PAGE_SIZE, RW)
        assert tracer.count() == 1  # second call untraced

    def test_event_cap_drops_not_grows(self, kernel, task):
        tracer = attach_tracer(kernel=kernel, max_events=3)
        for _ in range(6):
            kernel.sys_mmap(task, PAGE_SIZE, RW)
        tracer.detach()
        assert len(tracer.events) == 3
        assert tracer.dropped == 3


class TestLibmpkTracing:
    def test_nested_kernel_calls_get_deeper_depth(self, kernel,
                                                  process, task):
        lib = Libmpk(process)
        lib.mpk_init(task)
        tracer = attach_tracer(kernel=kernel, lib=lib)
        lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        tracer.detach()
        top = next(e for e in tracer.events if e.op == "mpk_mmap")
        nested = [e for e in tracer.events
                  if e.layer == "kernel"
                  and top.start_cycles <= e.start_cycles
                  <= top.start_cycles + top.cycles]
        assert top.depth == 0
        assert nested and all(e.depth > 0 for e in nested)

    def test_inclusive_costs_cover_nested_work(self, kernel, process,
                                               task):
        lib = Libmpk(process)
        lib.mpk_init(task)
        tracer = attach_tracer(kernel=kernel, lib=lib)
        lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        tracer.detach()
        top = next(e for e in tracer.events if e.op == "mpk_mmap")
        nested_sum = sum(e.cycles for e in tracer.events
                         if e.depth == 1)
        assert top.cycles >= nested_sum

    def test_total_cycles_filters(self, kernel, process, task):
        lib = Libmpk(process)
        lib.mpk_init(task)
        lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        tracer = attach_tracer(lib=lib)
        lib.mpk_begin(task, 100, RW)
        lib.mpk_end(task, 100)
        tracer.detach()
        begin_cost = tracer.total_cycles("libmpk", "mpk_begin")
        assert begin_cost == pytest.approx(89.7, abs=0.1)
        assert tracer.total_cycles() == pytest.approx(
            begin_cost + tracer.total_cycles("libmpk", "mpk_end"))

    def test_format_trace_is_readable(self, kernel, process, task):
        lib = Libmpk(process)
        lib.mpk_init(task)
        tracer = attach_tracer(kernel=kernel, lib=lib)
        lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        tracer.detach()
        text = format_trace(tracer.events)
        assert "libmpk.mpk_mmap" in text
        assert "kernel.sys_mmap" in text
        assert "cycles" in text

    def test_argument_summaries(self, kernel, process, task):
        lib = Libmpk(process)
        lib.mpk_init(task)
        tracer = attach_tracer(lib=lib)
        lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        tracer.detach()
        event = next(e for e in tracer.events if e.op == "mpk_mmap")
        assert f"tid{task.tid}" in event.args
        assert "100" in event.args

    def test_requires_a_target(self):
        with pytest.raises(ValueError):
            attach_tracer()


class TestOrdering:
    def test_same_tick_siblings_keep_call_order(self, machine):
        """Zero-cost siblings share a start tick; ``seq`` breaks the
        tie even when the caller hands events in arbitrary order."""
        tracer = Tracer()
        for op in ("alpha", "beta", "gamma"):
            with tracer.record("kernel", op, machine.clock, ""):
                pass  # no cycles charged: identical start/depth
        text = format_trace(reversed(tracer.events))
        assert text.index("kernel.alpha") < text.index("kernel.beta") \
            < text.index("kernel.gamma")

    def test_parents_still_precede_children(self, kernel, process,
                                            task):
        lib = Libmpk(process)
        lib.mpk_init(task)
        tracer = attach_tracer(kernel=kernel, lib=lib)
        lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        tracer.detach()
        lines = format_trace(tracer.events).splitlines()
        top = next(i for i, line in enumerate(lines)
                   if "mpk_mmap" in line)
        nested = next(i for i, line in enumerate(lines)
                      if "sys_mmap" in line)
        assert top < nested


class TestMultipleTracers:
    def test_two_tracers_record_independently(self, kernel, task):
        first = attach_tracer(kernel=kernel)
        second = attach_tracer(kernel=kernel, max_events=1)
        kernel.sys_mmap(task, PAGE_SIZE, RW)
        kernel.sys_mmap(task, PAGE_SIZE, RW)
        first.detach()
        kernel.sys_mmap(task, PAGE_SIZE, RW)
        second.detach()
        assert first.count() == 2
        assert len(second.events) == 1 and second.dropped == 2

    def test_double_wrap_raises(self, kernel):
        tracer = Tracer()
        tracer.wrap(kernel, "kernel", KERNEL_OPS, kernel.clock)
        with pytest.raises(RuntimeError):
            tracer.wrap(kernel, "kernel", ("sys_mmap",), kernel.clock)
        other = Tracer()
        with pytest.raises(RuntimeError):  # also across tracers
            other.wrap(kernel, "kernel", KERNEL_OPS, kernel.clock)
        tracer.detach()
        # after detach the methods are wrappable again
        other.wrap(kernel, "kernel", ("sys_mmap",), kernel.clock)
        other.detach()

    def test_detach_is_idempotent(self, kernel, task):
        tracer = attach_tracer(kernel=kernel)
        kernel.sys_mmap(task, PAGE_SIZE, RW)
        tracer.detach()
        tracer.detach()
        kernel.sys_mmap(task, PAGE_SIZE, RW)
        assert tracer.count() == 1
