"""Extension surface: mpk_adopt, eviction policies, stats, model
transitions, and eager sync."""

import pytest

from repro.consts import PAGE_SIZE, PROT_EXEC, PROT_READ, PROT_WRITE
from repro.errors import MpkVkeyInUse
from repro.hw.pkru import KEY_RIGHTS_READ
from repro.core.sync import do_pkey_sync
from repro import Libmpk

RW = PROT_READ | PROT_WRITE
RWX = RW | PROT_EXEC


class TestAdopt:
    def test_adopt_turns_a_mapping_into_a_group(self, lib, kernel,
                                                task):
        addr = kernel.sys_mmap(task, 2 * PAGE_SIZE, RW)
        task.write(addr, b"pre-existing data")
        lib.mpk_adopt(task, 77, addr, 2 * PAGE_SIZE, RW)
        group = lib.group(77)
        assert group.base == addr
        assert not group.cached          # key attaches lazily
        # First begin attaches the key and gates access.
        with lib.domain(task, 77, PROT_READ):
            assert task.read(addr, 17) == b"pre-existing data"
        assert task.try_read(addr, 1) is None

    def test_adopt_does_not_change_page_permissions(self, lib, kernel,
                                                    task):
        addr = kernel.sys_mmap(task, PAGE_SIZE, PROT_READ)
        lib.mpk_adopt(task, 77, addr, PAGE_SIZE, PROT_READ)
        # Still readable (no key yet, page bits unchanged).
        assert task.read(addr, 1) == b"\x00"

    def test_adopt_duplicate_vkey_rejected(self, lib, kernel, task):
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        lib.mpk_adopt(task, 77, addr, PAGE_SIZE, RW)
        with pytest.raises(MpkVkeyInUse):
            lib.mpk_adopt(task, 77, addr, PAGE_SIZE, RW)

    def test_adopted_rwx_group_stays_executable_when_evicted(
            self, lib, kernel, task):
        """The JIT requirement: an evicted code page loses data access
        but keeps executing."""
        addr = kernel.sys_mmap(task, PAGE_SIZE, RWX)
        task.write(addr, b"\xc3")
        lib.mpk_adopt(task, 77, addr, PAGE_SIZE, RWX)
        lib.mpk_begin(task, 77, RW)
        lib.mpk_end(task, 77)
        # Evict by pinning 15 other groups.
        for i in range(15):
            lib.mpk_mmap(task, 100 + i, PAGE_SIZE, RW)
            lib.mpk_begin(task, 100 + i, RW)
        assert not lib.group(77).cached
        assert task.try_read(addr, 1) is None      # data sealed
        assert task.fetch(addr, 1) == b"\xc3"      # still runs
        for i in range(15):
            lib.mpk_end(task, 100 + i)


class TestEvictionPolicies:
    def _churn(self, lib, task, accesses):
        for vkey in accesses:
            lib.mpk_begin(task, vkey, RW)
            lib.mpk_end(task, vkey)

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    def test_all_policies_preserve_correctness(self, process, task,
                                               policy):
        lib = Libmpk(process)
        lib.mpk_init(task, policy=policy)
        addrs = {}
        for i in range(25):
            vkey = 100 + i
            addrs[vkey] = lib.mpk_mmap(task, vkey, PAGE_SIZE, RW)
            with lib.domain(task, vkey, RW):
                task.write(addrs[vkey], bytes([i]))
        for i in range(25):
            vkey = 100 + i
            with lib.domain(task, vkey, PROT_READ):
                assert task.read(addrs[vkey], 1) == bytes([i])
            assert task.try_read(addrs[vkey], 1) is None

    def test_lru_and_fifo_differ_on_refreshed_entries(self, kernel):
        """A re-touched group survives under LRU but not under FIFO."""
        def victim_after_refresh(policy):
            process = kernel.create_process()
            task = process.main_task
            lib = Libmpk(process)
            lib.mpk_init(task, policy=policy)
            for i in range(15):
                lib.mpk_mmap(task, 100 + i, PAGE_SIZE, RW)
                lib.mpk_begin(task, 100 + i, RW)
                lib.mpk_end(task, 100 + i)
            # Refresh the oldest entry, then force one eviction.
            lib.mpk_begin(task, 100, RW)
            lib.mpk_end(task, 100)
            lib.mpk_mmap(task, 999, PAGE_SIZE, RW)
            lib.mpk_begin(task, 999, RW)
            lib.mpk_end(task, 999)
            return lib.group(100).cached

        assert victim_after_refresh("lru") is True
        assert victim_after_refresh("fifo") is False


class TestStats:
    def test_stats_snapshot(self, lib, task):
        lib.mpk_mmap(task, 100, 2 * PAGE_SIZE, RW)
        lib.mpk_begin(task, 100, RW)
        stats = lib.stats()
        assert stats["groups"] == 1
        assert stats["cached_groups"] == 1
        assert stats["pinned_groups"] == 1
        assert stats["hardware_keys"] == 15
        assert stats["protected_bytes"] == 2 * PAGE_SIZE
        assert stats["eviction_policy"] == "lru"
        lib.mpk_end(task, 100)
        assert lib.stats()["pinned_groups"] == 0

    def test_stats_track_fallbacks(self, process, task):
        lib = Libmpk(process)
        lib.mpk_init(task, evict_rate=0.0)
        for i in range(16):
            lib.mpk_mmap(task, 100 + i, PAGE_SIZE, RW)
            lib.mpk_mprotect(task, 100 + i, RW)
        assert lib.stats()["mprotect_fallbacks"] >= 1


class TestEagerSync:
    def test_eager_sync_has_same_semantics(self, kernel, process, task):
        running = process.spawn_task()
        kernel.scheduler.schedule(running, charge=False)
        sleeping = process.spawn_task()
        do_pkey_sync(kernel, task, 5, KEY_RIGHTS_READ, eager=True)
        assert running.pkru.rights(5) == KEY_RIGHTS_READ
        # Eager mode waits for sleeping threads too (wakes them).
        assert sleeping.pkru.rights(5) == KEY_RIGHTS_READ

    def test_eager_sync_costs_more(self, kernel, process, task,
                                   measure):
        for _ in range(3):
            kernel.scheduler.schedule(process.spawn_task(),
                                      charge=False)
        lazy = measure(lambda: do_pkey_sync(kernel, task, 5,
                                            KEY_RIGHTS_READ))
        eager = measure(lambda: do_pkey_sync(kernel, task, 5,
                                             KEY_RIGHTS_READ,
                                             eager=True))
        assert eager > lazy


class TestBeginWait:
    def _exhaust(self, lib, task):
        for i in range(15):
            lib.mpk_mmap(task, 100 + i, PAGE_SIZE, RW)
            lib.mpk_begin(task, 100 + i, RW)

    def test_succeeds_immediately_when_keys_free(self, lib, task):
        lib.mpk_mmap(task, 50, PAGE_SIZE, RW)
        attempts = lib.mpk_begin_wait(task, 50, RW,
                                      on_wait=lambda n: None)
        assert attempts == 1
        lib.mpk_end(task, 50)

    def test_waits_until_a_key_frees(self, lib, task):
        self._exhaust(lib, task)
        lib.mpk_mmap(task, 50, PAGE_SIZE, RW)
        waits = []

        def release_one(attempt):
            waits.append(attempt)
            if attempt == 2:
                lib.mpk_end(task, 100)  # progress on the 2nd wait

        attempts = lib.mpk_begin_wait(task, 50, RW, on_wait=release_one)
        assert attempts == 3
        assert waits == [1, 2]
        lib.mpk_end(task, 50)
        for i in range(1, 15):
            lib.mpk_end(task, 100 + i)

    def test_gives_up_after_max_attempts(self, lib, task):
        from repro.errors import MpkKeyExhaustion
        self._exhaust(lib, task)
        lib.mpk_mmap(task, 50, PAGE_SIZE, RW)
        with pytest.raises(MpkKeyExhaustion):
            lib.mpk_begin_wait(task, 50, RW, on_wait=lambda n: None,
                               max_attempts=3)
        for i in range(15):
            lib.mpk_end(task, 100 + i)


class TestBeginWaitTimeout:
    """The deadline path: bounded waits surface ETIMEDOUT instead of
    blocking forever."""

    def _exhaust(self, lib, task):
        for i in range(15):
            lib.mpk_mmap(task, 100 + i, PAGE_SIZE, RW)
            lib.mpk_begin(task, 100 + i, RW)

    def test_sync_wait_sleeps_out_the_deadline(self, lib, kernel, task):
        """With no waker, the thread sleeps the timeout away, the wait
        is charged on the clock, and MpkTimeout (ETIMEDOUT) surfaces."""
        from repro.errors import MpkTimeout
        self._exhaust(lib, task)
        lib.mpk_mmap(task, 50, PAGE_SIZE, RW)
        before = kernel.clock.now
        with pytest.raises(MpkTimeout) as excinfo:
            lib.mpk_begin_wait(task, 50, RW, timeout=50_000.0)
        assert excinfo.value.errno == "ETIMEDOUT"
        assert excinfo.value.vkey == 50
        assert excinfo.value.waited_cycles >= 50_000.0
        assert kernel.clock.now - before >= 50_000.0
        # The expiry itself is attributed to its own site.
        agg = kernel.machine.obs.aggregator
        assert agg.counts["libmpk.keycache.wait_timeout"] == 1
        assert lib.stats()["wait_timeouts"] == 1

    def test_timeout_leaves_no_queue_residue(self, lib, kernel, task):
        from repro.errors import MpkTimeout
        self._exhaust(lib, task)
        lib.mpk_mmap(task, 50, PAGE_SIZE, RW)
        with pytest.raises(MpkTimeout):
            lib.mpk_begin_wait(task, 50, RW, timeout=10_000.0)
        assert len(lib.key_waiters) == 0
        assert task.waiting_on is None
        report = lib.audit()
        assert report.ok, report.violations
        # The wait is retryable: free a key and the same call succeeds.
        lib.mpk_end(task, 100)
        assert lib.mpk_begin_wait(task, 50, RW, timeout=10_000.0) == 1
        lib.mpk_end(task, 50)

    def test_spinning_waiter_times_out(self, lib, task):
        """An on_wait waker that never frees a key trips the deadline
        (each futex round advances the clock) rather than spinning to
        max_attempts."""
        from repro.errors import MpkTimeout
        self._exhaust(lib, task)
        lib.mpk_mmap(task, 50, PAGE_SIZE, RW)
        with pytest.raises(MpkTimeout):
            lib.mpk_begin_wait(task, 50, RW, on_wait=lambda n: None,
                               timeout=1_000.0, max_attempts=10_000)

    def test_wake_in_time_beats_the_deadline(self, lib, task):
        self._exhaust(lib, task)
        lib.mpk_mmap(task, 50, PAGE_SIZE, RW)

        def release_one(attempt):
            if attempt == 1:
                lib.mpk_end(task, 100)

        attempts = lib.mpk_begin_wait(task, 50, RW,
                                      on_wait=release_one,
                                      timeout=1e12)
        assert attempts == 2
        assert lib.stats()["wait_timeouts"] == 0
        lib.mpk_end(task, 50)

    def test_timeout_validated(self, lib, task):
        from repro.errors import MpkError
        lib.mpk_mmap(task, 50, PAGE_SIZE, RW)
        with pytest.raises(MpkError):
            lib.mpk_begin_wait(task, 50, RW, timeout=0.0)
        with pytest.raises(MpkError):
            lib.mpk_begin_wait(task, 50, RW, timeout=-5.0)


class TestModelTransitions:
    def test_global_to_domain_seals_siblings(self, lib, kernel,
                                             process, task):
        """The transition quiesce found by the property tests: begin on
        a globally-readable group revokes the global grants."""
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)
        addr = lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        lib.mpk_mprotect(task, 100, PROT_READ)
        assert sibling.read(addr, 1) == b"\x00"
        lib.mpk_begin(task, 100, RW)
        assert sibling.try_read(addr, 1) is None
        lib.mpk_end(task, 100)

    def test_domain_to_global_grants_everyone(self, lib, kernel,
                                              process, task):
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)
        addr = lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        with lib.domain(task, 100, RW):
            task.write(addr, b"published later")
        assert sibling.try_read(addr, 1) is None
        lib.mpk_mprotect(task, 100, PROT_READ)
        assert sibling.read(addr, 15) == b"published later"
