"""mpk_disown, the code-cache GC, and fault-handler-driven lazy unlock."""

import pytest

from repro.consts import PAGE_SIZE, PROT_EXEC, PROT_READ, PROT_WRITE
from repro.errors import MpkError, MpkUnknownVkey, PkeyFault
from repro.apps.jit import ENGINES, JsEngine, KeyPerPageWx
from repro import Kernel, Libmpk

RW = PROT_READ | PROT_WRITE
RX = PROT_READ | PROT_EXEC


class TestDisown:
    def test_pages_stay_mapped_with_new_prot(self, lib, kernel, task):
        addr = lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        with lib.domain(task, 100, RW):
            task.write(addr, b"kept")
        lib.mpk_disown(task, 100, PROT_READ)
        # Group gone, data still there, plain page semantics now.
        with pytest.raises(MpkUnknownVkey):
            lib.mpk_begin(task, 100, RW)
        assert task.read(addr, 4) == b"kept"

    def test_frees_the_hardware_key(self, lib, task):
        lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        assert lib.cache.in_use == 1
        lib.mpk_disown(task, 100, PROT_READ)
        assert lib.cache.in_use == 0

    def test_pinned_group_rejected(self, lib, task):
        lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        lib.mpk_begin(task, 100, RW)
        with pytest.raises(MpkError):
            lib.mpk_disown(task, 100, PROT_READ)
        lib.mpk_end(task, 100)

    def test_vkey_is_reusable_after_disown(self, lib, task):
        lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        lib.mpk_disown(task, 100, PROT_READ)
        lib.mpk_mmap(task, 100, PAGE_SIZE, RW)  # fresh group, same vkey
        assert lib.group(100) is not None


class TestCodeCacheGc:
    def _engine(self):
        kernel = Kernel()
        process = kernel.create_process()
        task = process.main_task
        lib = Libmpk(process)
        lib.mpk_init(task)
        backend = KeyPerPageWx(kernel, lib)
        return JsEngine(kernel, process, ENGINES["chakracore"],
                        backend, cache_pages=64), lib

    def test_release_retires_the_virtual_key(self):
        engine, lib = self._engine()
        addr = engine.compile_function(128)
        groups_before = len(lib.groups())
        assert engine.backend.release_page(engine.jit_task, addr)
        assert len(lib.groups()) == groups_before - 1
        # The code still runs after the GC.
        engine.execute_native(addr, 128)

    def test_release_of_undedicated_page_is_noop(self):
        engine, lib = self._engine()
        addr = engine.alloc_code_page()  # never emitted to
        assert not engine.backend.release_page(engine.jit_task, addr)

    def test_released_page_can_be_rededicated(self):
        engine, lib = self._engine()
        addr = engine.compile_function(128)
        engine.backend.release_page(engine.jit_task, addr)
        # Re-emitting dedicates it again under a fresh vkey.
        engine.backend.emit(engine.jit_task, addr, engine.CODE_STUB)
        engine.execute_native(addr, 128)

    def test_gc_sweep_keeps_cache_groups_bounded(self):
        engine, lib = self._engine()
        addrs = [engine.compile_function(64) for _ in range(30)]
        for addr in addrs[:25]:  # sweep the cold ones
            engine.backend.release_page(engine.jit_task, addr)
        assert len(lib.groups()) == 5
        for addr in addrs:
            engine.execute_native(addr, 64)  # everything still runs


class TestFaultHandlers:
    def test_lazy_unlock_pattern(self, lib, kernel, task):
        """The handler opens the right domain on demand — the classic
        'protect everything, unlock on fault' deployment style."""
        addr = lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        opened = []

        def lazy_unlock(t, fault):
            if isinstance(fault, PkeyFault) and \
                    lib.group(100).contains(fault.addr):
                lib.mpk_begin(t, 100, RW)
                opened.append(fault.addr)
                return True
            return False

        task.set_fault_handler(lazy_unlock)
        task.write(addr, b"written via lazy unlock")
        assert opened == [addr]
        assert task.read(addr, 7) == b"written"
        lib.mpk_end(task, 100)
        task.set_fault_handler(None)

    def test_handler_declining_reraises(self, lib, kernel, task):
        addr = lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        task.set_fault_handler(lambda t, fault: False)
        with pytest.raises(PkeyFault):
            task.read(addr, 1)
        task.set_fault_handler(None)

    def test_handler_that_fixes_nothing_faults_on_retry(self, lib,
                                                        kernel, task):
        addr = lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        calls = []

        def liar(t, fault):
            calls.append(fault.addr)
            return True  # claims resolved but did nothing

        task.set_fault_handler(liar)
        with pytest.raises(PkeyFault):
            task.read(addr, 1)
        assert len(calls) == 1  # retried once, no infinite loop
        task.set_fault_handler(None)

    def test_try_read_respects_the_handler(self, lib, kernel, task):
        addr = lib.mpk_mmap(task, 100, PAGE_SIZE, RW)

        def lazy(t, fault):
            lib.mpk_begin(t, 100, PROT_READ)
            return True

        task.set_fault_handler(lazy)
        assert task.try_read(addr, 1) == b"\x00"
        lib.mpk_end(task, 100)
        task.set_fault_handler(None)
