"""GroupHeap allocator: first-fit, alignment, coalescing."""

import pytest

from repro.core.heap import ALIGNMENT, GroupHeap
from repro.errors import MpkError


@pytest.fixture
def heap():
    return GroupHeap(base=0x1000, size=4096)


class TestMalloc:
    def test_allocations_are_aligned(self, heap):
        for size in (1, 7, 15, 17, 100):
            assert heap.malloc(size) % ALIGNMENT == 0

    def test_first_fit_reuses_earliest_hole(self, heap):
        a = heap.malloc(64)
        b = heap.malloc(64)
        heap.malloc(64)
        heap.free(a)
        heap.free(b)
        assert heap.malloc(32) == a

    def test_exact_fit_consumes_chunk(self, heap):
        addr = heap.malloc(4096)
        assert addr == 0x1000
        assert heap.free_bytes() == 0
        with pytest.raises(MpkError):
            heap.malloc(1)

    def test_zero_or_negative_size_rejected(self, heap):
        with pytest.raises(MpkError):
            heap.malloc(0)
        with pytest.raises(MpkError):
            heap.malloc(-5)

    def test_exhaustion_message_is_actionable(self, heap):
        heap.malloc(4000)
        with pytest.raises(MpkError, match="exhausted"):
            heap.malloc(200)


class TestFree:
    def test_double_free_rejected(self, heap):
        addr = heap.malloc(64)
        heap.free(addr)
        with pytest.raises(MpkError):
            heap.free(addr)

    def test_free_of_unallocated_rejected(self, heap):
        with pytest.raises(MpkError):
            heap.free(0x1000)

    def test_coalescing_restores_full_capacity(self, heap):
        addrs = [heap.malloc(256) for _ in range(16)]
        assert heap.free_bytes() == 0
        for addr in addrs:
            heap.free(addr)
        assert heap.free_bytes() == 4096
        assert heap.largest_free_chunk() == 4096
        assert heap.malloc(4096) == 0x1000

    def test_coalescing_out_of_order_frees(self, heap):
        addrs = [heap.malloc(512) for _ in range(8)]
        for addr in addrs[::2] + addrs[1::2]:
            heap.free(addr)
        assert heap.largest_free_chunk() == 4096


class TestAccounting:
    def test_allocated_bytes_tracks_aligned_sizes(self, heap):
        heap.malloc(10)   # rounds to 16
        heap.malloc(100)  # rounds to 112
        assert heap.allocated_bytes() == 16 + 112
        assert heap.allocation_count() == 2

    def test_allocation_size_lookup(self, heap):
        addr = heap.malloc(30)
        assert heap.allocation_size(addr) == 32
        assert heap.allocation_size(0xBAD) is None

    def test_invariant_allocated_plus_free_is_total(self, heap):
        import random
        rng = random.Random(7)
        live = []
        for _ in range(200):
            if live and rng.random() < 0.4:
                heap.free(live.pop(rng.randrange(len(live))))
            else:
                try:
                    live.append(heap.malloc(rng.randrange(1, 400)))
                except MpkError:
                    pass
            assert heap.allocated_bytes() + heap.free_bytes() == 4096
