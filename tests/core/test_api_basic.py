"""libmpk API basics: init, mmap/munmap, begin/end, malloc/free."""

import pytest

from repro.consts import NUM_PKEYS, PAGE_SIZE, PROT_READ, PROT_WRITE
from repro.errors import (
    MpkError,
    MpkUnknownVkey,
    MpkVkeyInUse,
    PkeyFault,
    SegmentationFault,
)
from repro import Libmpk

RW = PROT_READ | PROT_WRITE
GROUP = 100


class TestInit:
    def test_init_grabs_all_hardware_keys(self, lib, process):
        # All 15 allocatable keys belong to libmpk now.
        assert lib.cache.capacity == NUM_PKEYS - 1
        assert process.pkeys.free_key_count() == 0

    def test_double_init_rejected(self, lib, task):
        with pytest.raises(MpkError):
            lib.mpk_init(task)

    def test_api_before_init_rejected(self, process, task):
        lib = Libmpk(process)
        with pytest.raises(MpkError):
            lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)

    def test_default_eviction_rate_is_full(self, process, task):
        lib = Libmpk(process)
        lib.mpk_init(task)  # evict_rate=-1 -> 1.0
        assert lib.cache.evict_rate == 1.0

    def test_invalid_eviction_rate_rejected(self, process, task):
        lib = Libmpk(process)
        with pytest.raises(MpkError):
            lib.mpk_init(task, evict_rate=1.5)


class TestKeycacheCounterInvariant:
    def test_holds_under_real_traffic(self, kernel, lib, task):
        addr = lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        with lib.domain(task, GROUP, RW):
            task.write(addr, b"x")
        lib.mpk_mprotect(task, GROUP, PROT_READ)
        failures = kernel.machine.obs.invariant_failures()
        assert not failures
        ok, _ = kernel.machine.obs.audit()
        assert ok

    def test_audit_flags_counter_drift(self, kernel, lib, process):
        """mpk_init registers hits + misses == lookups with obs; a
        counter going out of sync must fail the audit."""
        lib.cache.stats_hits += 1  # simulate a drifting counter
        failures = kernel.machine.obs.invariant_failures()
        assert f"keycache_counters.pid{process.pid}" in failures
        ok, _ = kernel.machine.obs.audit()
        assert not ok


class TestMmapMunmap:
    def test_group_starts_inaccessible(self, lib, task):
        """Figure 5: after mpk_mmap the pkey permission is '--'."""
        addr = lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        with pytest.raises(PkeyFault):
            task.read(addr, 1)

    def test_duplicate_vkey_rejected(self, lib, task):
        lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        with pytest.raises(MpkVkeyInUse):
            lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)

    def test_unknown_vkey_rejected(self, lib, task):
        with pytest.raises(MpkUnknownVkey):
            lib.mpk_begin(task, 999, RW)

    def test_munmap_destroys_group_and_pages(self, lib, task):
        addr = lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        lib.mpk_munmap(task, GROUP)
        with pytest.raises(SegmentationFault):
            task.read(addr, 1)
        with pytest.raises(MpkUnknownVkey):
            lib.mpk_begin(task, GROUP, RW)

    def test_munmap_frees_the_hardware_key(self, lib, task):
        lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        assert lib.cache.in_use == 1
        lib.mpk_munmap(task, GROUP)
        assert lib.cache.in_use == 0

    def test_vkey_reusable_after_munmap(self, lib, task):
        lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        lib.mpk_munmap(task, GROUP)
        lib.mpk_mmap(task, GROUP, 2 * PAGE_SIZE, RW)
        assert lib.group(GROUP).num_pages == 2

    def test_munmap_of_pinned_group_rejected(self, lib, task):
        lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        lib.mpk_begin(task, GROUP, RW)
        with pytest.raises(MpkError):
            lib.mpk_munmap(task, GROUP)

    def test_length_rounds_to_pages(self, lib, task):
        lib.mpk_mmap(task, GROUP, 100, RW)
        assert lib.group(GROUP).length == PAGE_SIZE


class TestBeginEnd:
    def test_begin_grants_only_requested_rights(self, lib, task):
        addr = lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        lib.mpk_begin(task, GROUP, PROT_READ)
        assert task.read(addr, 1) == b"\x00"
        with pytest.raises(PkeyFault):
            task.write(addr, b"x")
        lib.mpk_end(task, GROUP)

    def test_end_revokes_access(self, lib, task):
        addr = lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        lib.mpk_begin(task, GROUP, RW)
        task.write(addr, b"inside")
        lib.mpk_end(task, GROUP)
        with pytest.raises(PkeyFault):
            task.read(addr, 1)

    def test_end_without_begin_rejected(self, lib, task):
        lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        with pytest.raises(MpkError):
            lib.mpk_end(task, GROUP)

    def test_domain_context_manager(self, lib, task):
        addr = lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        with lib.domain(task, GROUP, RW):
            task.write(addr, b"data")
        assert task.try_read(addr, 4) is None

    def test_domain_context_manager_releases_on_exception(self, lib, task):
        addr = lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        with pytest.raises(RuntimeError):
            with lib.domain(task, GROUP, RW):
                raise RuntimeError("app bug")
        assert not lib.group(GROUP).pinned
        assert task.try_read(addr, 1) is None

    def test_isolation_is_thread_local(self, lib, kernel, process, task):
        """The security core: a domain opened by one thread grants
        nothing to its siblings (per-thread PKRU view)."""
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)
        addr = lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        lib.mpk_begin(task, GROUP, RW)
        task.write(addr, b"secret")
        assert sibling.try_read(addr, 6) is None
        assert task.read(addr, 6) == b"secret"
        lib.mpk_end(task, GROUP)

    def test_two_threads_can_hold_same_domain(self, lib, kernel, process,
                                              task):
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)
        addr = lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        lib.mpk_begin(task, GROUP, RW)
        lib.mpk_begin(sibling, GROUP, PROT_READ)
        task.write(addr, b"shared")
        assert sibling.read(addr, 6) == b"shared"
        lib.mpk_end(sibling, GROUP)
        lib.mpk_end(task, GROUP)

    def test_nested_begin_end_pin_counting(self, lib, kernel, process,
                                           task):
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)
        lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        lib.mpk_begin(task, GROUP, RW)
        lib.mpk_begin(sibling, GROUP, RW)
        lib.mpk_end(task, GROUP)
        assert lib.group(GROUP).pinned  # sibling still inside
        lib.mpk_end(sibling, GROUP)
        assert not lib.group(GROUP).pinned


class TestMallocFree:
    def test_malloc_returns_addresses_inside_group(self, lib, task):
        lib.mpk_mmap(task, GROUP, 4 * PAGE_SIZE, RW)
        addr = lib.mpk_malloc(task, GROUP, 256)
        group = lib.group(GROUP)
        assert group.base <= addr < group.end

    def test_allocations_do_not_overlap(self, lib, task):
        lib.mpk_mmap(task, GROUP, 4 * PAGE_SIZE, RW)
        chunks = [(lib.mpk_malloc(task, GROUP, 100), 100)
                  for _ in range(20)]
        spans = sorted((a, a + s) for a, s in chunks)
        for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
            assert a_end <= b_start

    def test_malloc_exhaustion_raises(self, lib, task):
        lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        lib.mpk_malloc(task, GROUP, PAGE_SIZE)
        with pytest.raises(MpkError):
            lib.mpk_malloc(task, GROUP, 16)

    def test_free_enables_reuse(self, lib, task):
        lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        addr = lib.mpk_malloc(task, GROUP, PAGE_SIZE)
        lib.mpk_free(task, GROUP, addr)
        assert lib.mpk_malloc(task, GROUP, PAGE_SIZE) == addr

    def test_heap_data_protected_by_domain(self, lib, task):
        lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        addr = lib.mpk_malloc(task, GROUP, 64)
        with lib.domain(task, GROUP, RW):
            task.write(addr, b"key material")
        assert task.try_read(addr, 12) is None

    def test_free_of_bogus_address_rejected(self, lib, task):
        lib.mpk_mmap(task, GROUP, PAGE_SIZE, RW)
        lib.mpk_malloc(task, GROUP, 64)
        with pytest.raises(MpkError):
            lib.mpk_free(task, GROUP, 0x1234)
