"""KeyCache unit behaviour (isolated from the rest of libmpk)."""

import pytest

from repro.core.keycache import KeyCache
from repro.errors import MpkError, MpkKeyExhaustion


@pytest.fixture
def cache():
    return KeyCache(hardware_keys=[1, 2, 3], evict_rate=1.0)


class TestAssignLookup:
    def test_assign_free_until_exhausted(self, cache):
        assert cache.assign_free(10) == 1
        assert cache.assign_free(11) == 2
        assert cache.assign_free(12) == 3
        assert cache.assign_free(13) is None

    def test_lookup_hit_and_miss_stats(self, cache):
        cache.assign_free(10)
        assert cache.lookup(10) == 1
        assert cache.lookup(99) is None
        assert cache.stats_hits == 1
        assert cache.stats_misses == 1

    def test_peek_does_not_touch_stats_or_recency(self, cache):
        cache.assign_free(10)
        cache.assign_free(11)
        cache.peek(10)
        assert cache.stats_hits == 0
        assert cache.choose_victim(lambda v: True) == 10  # still LRU

    def test_double_assign_rejected(self, cache):
        cache.assign_free(10)
        with pytest.raises(MpkError):
            cache.assign_free(10)


class TestEviction:
    def test_victim_is_lru(self, cache):
        for vkey in (10, 11, 12):
            cache.assign_free(vkey)
        cache.lookup(10)  # 11 becomes LRU
        assert cache.choose_victim(lambda v: True) == 11

    def test_victim_respects_veto(self, cache):
        for vkey in (10, 11, 12):
            cache.assign_free(vkey)
        assert cache.choose_victim(lambda v: v != 10) == 11

    def test_all_vetoed_raises_exhaustion(self, cache):
        cache.assign_free(10)
        with pytest.raises(MpkKeyExhaustion):
            cache.choose_victim(lambda v: False)

    def test_evict_then_bind_transfers_key(self, cache):
        cache.assign_free(10)
        pkey = cache.evict(10)
        cache.bind(20, pkey)
        assert cache.lookup(20) == pkey
        assert cache.lookup(10) is None

    def test_release_returns_key_to_free_pool(self, cache):
        cache.assign_free(10)
        cache.assign_free(11)
        cache.assign_free(12)
        released = cache.release(11)
        assert cache.assign_free(13) == released

    def test_bind_of_foreign_key_rejected(self, cache):
        with pytest.raises(MpkError):
            cache.bind(20, 99)

    def test_evict_uncached_rejected(self, cache):
        with pytest.raises(MpkError):
            cache.evict(42)


class TestEvictionRate:
    @pytest.mark.parametrize("rate,expected", [
        (1.0, [True] * 8),
        (0.0, [False] * 8),
        (0.5, [False, True] * 4),
        (0.25, [False, False, False, True] * 2),
    ])
    def test_deterministic_patterns(self, rate, expected):
        cache = KeyCache([1], evict_rate=rate)
        assert [cache.should_evict_on_miss() for _ in range(8)] == expected

    def test_rate_validation(self):
        with pytest.raises(MpkError):
            KeyCache([1], evict_rate=-0.1)
        with pytest.raises(MpkError):
            KeyCache([1], evict_rate=1.01)

    def test_fallback_stats(self):
        cache = KeyCache([1], evict_rate=0.5)
        for _ in range(10):
            cache.should_evict_on_miss()
        assert cache.stats_fallbacks == 5

    def test_diffusion_counts_misses_seen_by_other_apis(self):
        """The error-diffusion gate runs over the *unified* miss
        counter: a miss observed only by lookup() (the mpk_begin path
        never asks for an eviction decision) still advances the
        pattern.  A private per-decision counter drifted here — the
        second miss of a 0.5-rate pattern must evict even when the
        first miss never reached should_evict_on_miss()."""
        cache = KeyCache([1], evict_rate=0.5)
        assert cache.lookup(10) is None        # miss 1: begin-style
        assert cache.lookup(11) is None        # miss 2: mprotect-style
        assert cache.should_evict_on_miss()    # 0.5 rate: evict on #2
        assert cache.stats_misses == 2

    def test_decision_does_not_double_count_the_lookup_miss(self):
        cache = KeyCache([1], evict_rate=1.0)
        assert cache.lookup(10) is None
        cache.should_evict_on_miss()
        assert cache.stats_misses == 1
        assert cache.check_counters() is None

    def test_counter_identity_holds_under_mixed_traffic(self):
        cache = KeyCache([1, 2], evict_rate=0.5)
        cache.assign_free(10)
        for vkey in (10, 99, 10, 98, 97, 10):
            if cache.lookup(vkey) is None:
                cache.should_evict_on_miss()
        assert cache.stats_hits + cache.stats_misses == cache.stats_lookups
        assert cache.check_counters() is None

    def test_standalone_decisions_are_flagged_as_drift(self):
        """Decisions with no preceding lookup synthesize misses; the
        hits + misses == lookups identity then fails, and
        check_counters() must say so (the obs audit hook)."""
        cache = KeyCache([1], evict_rate=1.0)
        cache.should_evict_on_miss()
        assert cache.check_counters() is not None


class TestReservation:
    def test_reserved_key_never_chosen_as_victim(self, cache):
        reserved = cache.reserve_free_key()
        cache.assign_free(10)
        cache.assign_free(11)
        assert cache.assign_free(12) is None  # pool exhausted (1 reserved)
        victim = cache.choose_victim(lambda v: True)
        assert cache.peek(victim) != reserved

    def test_unreserve_returns_key(self, cache):
        reserved = cache.reserve_free_key()
        cache.unreserve(reserved)
        got = {cache.assign_free(v) for v in (10, 11, 12)}
        assert reserved in got

    def test_reserve_specific_key(self, cache):
        cache.assign_free(10)
        pkey = cache.evict(10)
        cache.reserve_key(pkey)
        assert pkey in cache.reserved_keys
        with pytest.raises(MpkError):
            cache.reserve_key(pkey)

    def test_empty_key_list_rejected(self):
        with pytest.raises(MpkError):
            KeyCache([], evict_rate=1.0)


class TestEvictionPolicyStrategy:
    def test_default_is_lru_by_name(self, cache):
        assert cache.policy == "lru"

    def test_registry_name_resolution(self):
        from repro.core.keycache import EVICTION_POLICIES, POLICIES

        assert set(POLICIES) == {"lru", "fifo", "random", "clock",
                                 "cost-aware"}
        for name in POLICIES:
            assert KeyCache([1, 2], evict_rate=1.0,
                            policy=name).policy == name
        assert set(EVICTION_POLICIES) == set(POLICIES)

    def test_unknown_policy_rejected(self):
        with pytest.raises(MpkError, match="unknown eviction policy"):
            KeyCache([1, 2], evict_rate=1.0, policy="clairvoyant")

    def test_policy_object_accepted(self):
        """A custom strategy instance plugs straight in — the ablation
        path the extraction exists for."""
        from repro.core.keycache import EvictionPolicy

        class NewestFirst(EvictionPolicy):
            name = "newest-first"

            def choose_victim(self, candidates, rng):
                return candidates[-1]

        cache = KeyCache([1, 2], evict_rate=1.0, policy=NewestFirst())
        assert cache.policy == "newest-first"
        cache.assign_free(10)
        cache.assign_free(11)
        assert cache.choose_victim(lambda v: True) == 11

    def test_fifo_ignores_lookup_recency(self):
        cache = KeyCache([1, 2], evict_rate=1.0, policy="fifo")
        cache.assign_free(10)
        cache.assign_free(11)
        cache.lookup(10)  # would move 10 to MRU under LRU
        assert cache.choose_victim(lambda v: True) == 10

    def test_lru_refreshes_on_lookup(self, cache):
        cache.assign_free(10)
        cache.assign_free(11)
        cache.lookup(10)
        assert cache.choose_victim(lambda v: True) == 11

    def test_random_is_seed_deterministic(self):
        def victims(seed):
            cache = KeyCache(list(range(1, 9)), evict_rate=1.0,
                             policy="random", seed=seed)
            for vkey in range(10, 18):
                cache.assign_free(vkey)
            return [cache.choose_victim(lambda v: True)
                    for _ in range(5)]

        assert victims(1) == victims(1)
        assert victims(1) != victims(2)

    def test_global_random_state_cannot_perturb_victims(self):
        """Regression (keyscale determinism contract): the random
        policy must draw only from the cache's injected seeded RNG.
        Were it to touch the module-global ``random`` stream, two runs
        identical in everything but unrelated global-RNG activity
        would pick different victims — exactly what this simulates by
        reseeding and draining the global generator differently
        between and during two otherwise-identical runs."""
        import random as global_random

        def victims(global_noise):
            global_random.seed(global_noise)
            cache = KeyCache(list(range(1, 9)), evict_rate=1.0,
                             policy="random", seed=7)
            for vkey in range(10, 18):
                cache.assign_free(vkey)
            out = []
            for i in range(6):
                # Unrelated global-RNG traffic mid-run.
                global_random.random()
                victim = cache.choose_victim(lambda v: True)
                out.append(victim)
                cache.bind(100 + i, cache.evict(victim))
            return out

        assert victims(0xAAAA) == victims(0x5555)


class TestClockPolicy:
    def make(self, keys=4):
        cache = KeyCache(list(range(1, keys + 1)), evict_rate=1.0,
                         policy="clock")
        for vkey in range(10, 10 + keys):
            cache.assign_free(vkey)
        return cache

    def test_unreferenced_oldest_evicted_first(self):
        cache = self.make()
        assert cache.choose_victim(lambda v: True) == 10

    def test_hit_earns_a_second_chance(self):
        cache = self.make(keys=2)
        cache.lookup(10)  # sets 10's reference bit
        assert cache.choose_victim(lambda v: True) == 11

    def test_second_chance_is_spent_by_the_sweep(self):
        cache = self.make(keys=2)
        cache.lookup(10)
        cache.choose_victim(lambda v: True)   # sweep clears 10's bit
        # Hand sits past 11; the wrapped scan finds 10 unreferenced.
        assert cache.choose_victim(lambda v: True) == 10

    def test_all_referenced_evicts_under_the_hand(self):
        cache = self.make(keys=3)
        for vkey in (10, 11, 12):
            cache.lookup(vkey)
        assert cache.choose_victim(lambda v: True) == 10

    def test_eviction_drops_reference_state(self):
        cache = self.make(keys=2)
        cache.lookup(10)
        cache.bind(20, cache.evict(10))
        assert 10 not in cache._policy._referenced

    def test_deterministic_across_runs(self):
        def sequence():
            cache = self.make(keys=4)
            out = []
            for i in range(8):
                cache.lookup(10 + (i % 2))
                victim = cache.choose_victim(lambda v: True)
                out.append(victim)
                cache.bind(100 + i, cache.evict(victim))
            return out

        assert sequence() == sequence()


class TestCostAwarePolicy:
    def make(self, costs=None, keys=3):
        cache = KeyCache(list(range(1, keys + 1)), evict_rate=1.0,
                         policy="cost-aware")
        if costs is not None:
            cache.victim_cost = lambda cands: [costs[v] for v in cands]
        for vkey in range(10, 10 + keys):
            cache.assign_free(vkey)
        return cache

    def test_without_hook_degenerates_to_lru(self):
        cache = self.make()
        cache.lookup(10)
        assert cache.choose_victim(lambda v: True) == 11

    def test_cheapest_candidate_loses(self):
        cache = self.make(costs={10: 5.0, 11: 1.0, 12: 3.0})
        assert cache.choose_victim(lambda v: True) == 11

    def test_cost_ties_fall_to_the_oldest(self):
        cache = self.make(costs={10: 2.0, 11: 2.0, 12: 2.0})
        cache.lookup(10)  # recency refresh: 11 becomes oldest
        assert cache.choose_victim(lambda v: True) == 11

    def test_infinite_cost_is_an_effective_veto(self):
        """The libmpk pricer marks a vkey with parked waiters as +inf:
        it must never be picked while any finite candidate exists."""
        import math
        cache = self.make(costs={10: math.inf, 11: math.inf, 12: 9.0})
        assert cache.choose_victim(lambda v: True) == 12

    def test_all_infinite_falls_back_to_oldest(self):
        import math
        cache = self.make(
            costs={10: math.inf, 11: math.inf, 12: math.inf})
        assert cache.choose_victim(lambda v: True) == 10

    def test_recency_window_bounds_the_cost_search(self):
        """Cost refines only within the oldest half of the candidates:
        a dirt-cheap but recently-used key survives over a pricier old
        one (evicting purely by cost re-evicts the hot set)."""
        cache = self.make(costs={10: 5.0, 11: 4.0, 12: 1.0, 13: 0.5},
                          keys=4)
        assert cache.choose_victim(lambda v: True) == 11

    def test_vetoed_old_cohort_widens_to_the_young(self):
        """A fully-demanded old cohort must not force evicting a
        demanded key while an undemanded young one exists."""
        import math
        cache = self.make(costs={10: math.inf, 11: math.inf,
                                 12: 7.0, 13: math.inf}, keys=4)
        assert cache.choose_victim(lambda v: True) == 12

    def test_miscounting_hook_rejected(self):
        cache = self.make(keys=2)
        cache.victim_cost = lambda cands: [1.0]
        with pytest.raises(MpkError, match="victim_cost"):
            cache.choose_victim(lambda v: True)

    def test_cost_blind_policies_ignore_the_hook(self):
        cache = KeyCache([1, 2], evict_rate=1.0, policy="lru")
        cache.victim_cost = lambda cands: [0.0, -1.0][:len(cands)]
        cache.assign_free(10)
        cache.assign_free(11)
        assert cache.choose_victim(lambda v: True) == 10


class TestPartitionHardening:
    """Fail-pre-fix regressions for the bind/refund partition holes
    found by the 10k-domain keyscale soak, plus trip-tests for the
    check_partition() audit hook itself."""

    def test_refund_of_reserved_key_rejected(self, cache):
        """Pre-fix, refund() accepted a reserved key — it landed in
        both the reserved and free pools, and a later assign_free
        could hand out a key the execute-only plane still owned."""
        reserved = cache.reserve_free_key()
        with pytest.raises(MpkError, match="reserved"):
            cache.refund(reserved)
        assert cache.check_partition() is None

    def test_bind_of_free_key_rejected(self, cache):
        """Pre-fix, bind() accepted a key straight off the free list,
        double-counting it (free and bound at once)."""
        with pytest.raises(MpkError, match="free"):
            cache.bind(10, cache.free_keys[0])
        assert cache.check_partition() is None

    def test_bind_of_reserved_key_rejected(self, cache):
        reserved = cache.reserve_free_key()
        with pytest.raises(MpkError, match="reserved"):
            cache.bind(10, reserved)
        assert cache.check_partition() is None

    def test_bind_of_bound_key_rejected(self, cache):
        pkey = cache.assign_free(10)
        with pytest.raises(MpkError, match="already bound"):
            cache.bind(11, pkey)
        assert cache.check_partition() is None

    def test_partition_check_trips_on_a_lost_key(self, cache):
        pkey = cache.assign_free(10)
        cache.evict(10)  # pkey now in limbo: an audit would see a hole
        problem = cache.check_partition()
        assert problem is not None and "partition broken" in problem
        cache.refund(pkey)
        assert cache.check_partition() is None

    def test_partition_check_trips_on_a_double_counted_key(self, cache):
        reserved = cache.reserve_free_key()
        cache._free.append(reserved)  # simulate the pre-fix refund bug
        assert cache.check_partition() is not None

    def test_partition_holds_through_the_full_lifecycle(self, cache):
        cache.assign_free(10)
        cache.assign_free(11)
        cache.bind(20, cache.evict(10))
        cache.release(11)
        reserved = cache.reserve_free_key()
        cache.unreserve(reserved)
        assert cache.check_partition() is None


class TestExtremeMissRates:
    """should_evict_on_miss() accounting when nearly every lookup
    misses (satellite of the keyscale soak: 10k domains over 15 keys
    run the miss path almost exclusively)."""

    @pytest.mark.parametrize("rate", [0.001, 0.1, 0.5, 0.999, 1.0])
    def test_identity_and_decision_count_at_scale(self, rate):
        import math
        cache = KeyCache([1], evict_rate=rate)
        n = 10_000
        decisions = 0
        for vkey in range(n):  # every lookup a miss
            assert cache.lookup(vkey) is None
            if cache.should_evict_on_miss():
                decisions += 1
        assert cache.check_counters() is None
        assert cache.stats_misses == n
        # Error diffusion telescopes: floor(n*rate) evictions exactly.
        assert decisions == math.floor(n * rate)
        assert cache.stats_fallbacks == n - decisions

    def test_identity_survives_rare_hits_in_a_miss_storm(self):
        cache = KeyCache([1, 2], evict_rate=0.999)
        cache.assign_free(0)
        for i in range(5_000):
            vkey = 0 if i % 100 == 0 else 1_000 + i
            if cache.lookup(vkey) is None:
                cache.should_evict_on_miss()
        assert cache.check_counters() is None
        assert (cache.stats_hits + cache.stats_misses
                == cache.stats_lookups)
