"""KeyCache unit behaviour (isolated from the rest of libmpk)."""

import pytest

from repro.core.keycache import KeyCache
from repro.errors import MpkError, MpkKeyExhaustion


@pytest.fixture
def cache():
    return KeyCache(hardware_keys=[1, 2, 3], evict_rate=1.0)


class TestAssignLookup:
    def test_assign_free_until_exhausted(self, cache):
        assert cache.assign_free(10) == 1
        assert cache.assign_free(11) == 2
        assert cache.assign_free(12) == 3
        assert cache.assign_free(13) is None

    def test_lookup_hit_and_miss_stats(self, cache):
        cache.assign_free(10)
        assert cache.lookup(10) == 1
        assert cache.lookup(99) is None
        assert cache.stats_hits == 1
        assert cache.stats_misses == 1

    def test_peek_does_not_touch_stats_or_recency(self, cache):
        cache.assign_free(10)
        cache.assign_free(11)
        cache.peek(10)
        assert cache.stats_hits == 0
        assert cache.choose_victim(lambda v: True) == 10  # still LRU

    def test_double_assign_rejected(self, cache):
        cache.assign_free(10)
        with pytest.raises(MpkError):
            cache.assign_free(10)


class TestEviction:
    def test_victim_is_lru(self, cache):
        for vkey in (10, 11, 12):
            cache.assign_free(vkey)
        cache.lookup(10)  # 11 becomes LRU
        assert cache.choose_victim(lambda v: True) == 11

    def test_victim_respects_veto(self, cache):
        for vkey in (10, 11, 12):
            cache.assign_free(vkey)
        assert cache.choose_victim(lambda v: v != 10) == 11

    def test_all_vetoed_raises_exhaustion(self, cache):
        cache.assign_free(10)
        with pytest.raises(MpkKeyExhaustion):
            cache.choose_victim(lambda v: False)

    def test_evict_then_bind_transfers_key(self, cache):
        cache.assign_free(10)
        pkey = cache.evict(10)
        cache.bind(20, pkey)
        assert cache.lookup(20) == pkey
        assert cache.lookup(10) is None

    def test_release_returns_key_to_free_pool(self, cache):
        cache.assign_free(10)
        cache.assign_free(11)
        cache.assign_free(12)
        released = cache.release(11)
        assert cache.assign_free(13) == released

    def test_bind_of_foreign_key_rejected(self, cache):
        with pytest.raises(MpkError):
            cache.bind(20, 99)

    def test_evict_uncached_rejected(self, cache):
        with pytest.raises(MpkError):
            cache.evict(42)


class TestEvictionRate:
    @pytest.mark.parametrize("rate,expected", [
        (1.0, [True] * 8),
        (0.0, [False] * 8),
        (0.5, [False, True] * 4),
        (0.25, [False, False, False, True] * 2),
    ])
    def test_deterministic_patterns(self, rate, expected):
        cache = KeyCache([1], evict_rate=rate)
        assert [cache.should_evict_on_miss() for _ in range(8)] == expected

    def test_rate_validation(self):
        with pytest.raises(MpkError):
            KeyCache([1], evict_rate=-0.1)
        with pytest.raises(MpkError):
            KeyCache([1], evict_rate=1.01)

    def test_fallback_stats(self):
        cache = KeyCache([1], evict_rate=0.5)
        for _ in range(10):
            cache.should_evict_on_miss()
        assert cache.stats_fallbacks == 5

    def test_diffusion_counts_misses_seen_by_other_apis(self):
        """The error-diffusion gate runs over the *unified* miss
        counter: a miss observed only by lookup() (the mpk_begin path
        never asks for an eviction decision) still advances the
        pattern.  A private per-decision counter drifted here — the
        second miss of a 0.5-rate pattern must evict even when the
        first miss never reached should_evict_on_miss()."""
        cache = KeyCache([1], evict_rate=0.5)
        assert cache.lookup(10) is None        # miss 1: begin-style
        assert cache.lookup(11) is None        # miss 2: mprotect-style
        assert cache.should_evict_on_miss()    # 0.5 rate: evict on #2
        assert cache.stats_misses == 2

    def test_decision_does_not_double_count_the_lookup_miss(self):
        cache = KeyCache([1], evict_rate=1.0)
        assert cache.lookup(10) is None
        cache.should_evict_on_miss()
        assert cache.stats_misses == 1
        assert cache.check_counters() is None

    def test_counter_identity_holds_under_mixed_traffic(self):
        cache = KeyCache([1, 2], evict_rate=0.5)
        cache.assign_free(10)
        for vkey in (10, 99, 10, 98, 97, 10):
            if cache.lookup(vkey) is None:
                cache.should_evict_on_miss()
        assert cache.stats_hits + cache.stats_misses == cache.stats_lookups
        assert cache.check_counters() is None

    def test_standalone_decisions_are_flagged_as_drift(self):
        """Decisions with no preceding lookup synthesize misses; the
        hits + misses == lookups identity then fails, and
        check_counters() must say so (the obs audit hook)."""
        cache = KeyCache([1], evict_rate=1.0)
        cache.should_evict_on_miss()
        assert cache.check_counters() is not None


class TestReservation:
    def test_reserved_key_never_chosen_as_victim(self, cache):
        reserved = cache.reserve_free_key()
        cache.assign_free(10)
        cache.assign_free(11)
        assert cache.assign_free(12) is None  # pool exhausted (1 reserved)
        victim = cache.choose_victim(lambda v: True)
        assert cache.peek(victim) != reserved

    def test_unreserve_returns_key(self, cache):
        reserved = cache.reserve_free_key()
        cache.unreserve(reserved)
        got = {cache.assign_free(v) for v in (10, 11, 12)}
        assert reserved in got

    def test_reserve_specific_key(self, cache):
        cache.assign_free(10)
        pkey = cache.evict(10)
        cache.reserve_key(pkey)
        assert pkey in cache.reserved_keys
        with pytest.raises(MpkError):
            cache.reserve_key(pkey)

    def test_empty_key_list_rejected(self):
        with pytest.raises(MpkError):
            KeyCache([], evict_rate=1.0)


class TestEvictionPolicyStrategy:
    def test_default_is_lru_by_name(self, cache):
        assert cache.policy == "lru"

    def test_registry_name_resolution(self):
        from repro.core.keycache import EVICTION_POLICIES, POLICIES

        assert set(POLICIES) == {"lru", "fifo", "random"}
        for name in POLICIES:
            assert KeyCache([1, 2], evict_rate=1.0,
                            policy=name).policy == name
        assert set(EVICTION_POLICIES) == set(POLICIES)

    def test_unknown_policy_rejected(self):
        with pytest.raises(MpkError, match="unknown eviction policy"):
            KeyCache([1, 2], evict_rate=1.0, policy="clairvoyant")

    def test_policy_object_accepted(self):
        """A custom strategy instance plugs straight in — the ablation
        path the extraction exists for."""
        from repro.core.keycache import EvictionPolicy

        class NewestFirst(EvictionPolicy):
            name = "newest-first"

            def choose_victim(self, candidates, rng):
                return candidates[-1]

        cache = KeyCache([1, 2], evict_rate=1.0, policy=NewestFirst())
        assert cache.policy == "newest-first"
        cache.assign_free(10)
        cache.assign_free(11)
        assert cache.choose_victim(lambda v: True) == 11

    def test_fifo_ignores_lookup_recency(self):
        cache = KeyCache([1, 2], evict_rate=1.0, policy="fifo")
        cache.assign_free(10)
        cache.assign_free(11)
        cache.lookup(10)  # would move 10 to MRU under LRU
        assert cache.choose_victim(lambda v: True) == 10

    def test_lru_refreshes_on_lookup(self, cache):
        cache.assign_free(10)
        cache.assign_free(11)
        cache.lookup(10)
        assert cache.choose_victim(lambda v: True) == 11

    def test_random_is_seed_deterministic(self):
        def victims(seed):
            cache = KeyCache(list(range(1, 9)), evict_rate=1.0,
                             policy="random", seed=seed)
            for vkey in range(10, 18):
                cache.assign_free(vkey)
            return [cache.choose_victim(lambda v: True)
                    for _ in range(5)]

        assert victims(1) == victims(1)
        assert victims(1) != victims(2)
