"""Tasks, scheduler placement, task_work, and rescheduling IPIs."""

import pytest

from repro.consts import PAGE_SIZE, PROT_READ, PROT_WRITE
from repro.hw.pkru import KEY_RIGHTS_NONE, KEY_RIGHTS_READ, PKRU

RW = PROT_READ | PROT_WRITE


class TestTaskPkru:
    def test_tasks_start_with_default_deny(self, process):
        task = process.spawn_task()
        assert task.pkru.value == PKRU.deny_all_but_default().value

    def test_wrpkru_updates_task_and_core(self, kernel, task):
        task.wrpkru(0)
        assert task.pkru.value == 0
        assert kernel.machine.core(task.core_id).pkru.value == 0

    def test_pkey_set_get_roundtrip(self, kernel, task):
        task.pkey_set(4, KEY_RIGHTS_READ)
        assert task.pkey_get(4) == KEY_RIGHTS_READ
        task.pkey_set(4, KEY_RIGHTS_NONE)
        assert task.pkey_get(4) == KEY_RIGHTS_NONE

    def test_memory_ops_require_a_core(self, process):
        parked = process.spawn_task()
        with pytest.raises(RuntimeError):
            parked.read(0x1000, 1)

    def test_try_read_swallows_faults(self, kernel, task):
        assert task.try_read(0xDEAD000, 8) is None


class TestScheduler:
    def test_schedule_loads_task_pkru_into_core(self, kernel, process):
        task = process.spawn_task()
        task.pkru = PKRU.allow_all()
        kernel.scheduler.schedule(task)
        assert kernel.machine.core(task.core_id).pkru.value == 0

    def test_unschedule_frees_the_core(self, kernel, process):
        task = process.spawn_task()
        core_id = kernel.scheduler.schedule(task)
        kernel.scheduler.unschedule(task)
        assert not task.running
        other = process.spawn_task()
        assert kernel.scheduler.schedule(other, core_id=core_id) == core_id

    def test_double_schedule_rejected(self, kernel, process, task):
        with pytest.raises(RuntimeError):
            kernel.scheduler.schedule(task)

    def test_busy_core_rejected(self, kernel, process, task):
        other = process.spawn_task()
        with pytest.raises(RuntimeError):
            kernel.scheduler.schedule(other, core_id=task.core_id)

    def test_running_tasks_filters_by_process(self, kernel, process):
        other_process = kernel.create_process()
        assert kernel.scheduler.running_tasks(process) == [
            process.main_task]
        assert kernel.scheduler.running_tasks(other_process) == [
            other_process.main_task]
        assert len(kernel.scheduler.running_tasks()) == 2


class TestTaskWork:
    def test_work_runs_on_resched_ipi(self, kernel, process, task):
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)
        ran = []
        sibling.task_work_add(lambda t: ran.append(t.tid))
        assert kernel.scheduler.send_resched_ipi(sibling)
        assert ran == [sibling.tid]
        assert not sibling.has_pending_task_work()

    def test_ipi_to_sleeping_task_is_a_noop(self, kernel, process):
        sleeper = process.spawn_task()
        sleeper.task_work_add(lambda t: None)
        assert not kernel.scheduler.send_resched_ipi(sleeper)
        assert sleeper.has_pending_task_work()  # runs at next schedule

    def test_work_runs_at_schedule_in(self, kernel, process):
        sleeper = process.spawn_task()
        ran = []
        sleeper.task_work_add(lambda t: ran.append("work"))
        kernel.scheduler.schedule(sleeper)
        assert ran == ["work"]

    def test_pkru_edit_in_task_work_reaches_core(self, kernel, process):
        """The do_pkey_sync pattern: task_work rewrites PKRU; the kernel
        exit path loads it into the core."""
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)

        def grant(task):
            task.pkru = task.pkru.with_rights(5, KEY_RIGHTS_READ)

        sibling.task_work_add(grant)
        kernel.scheduler.send_resched_ipi(sibling)
        assert kernel.machine.core(sibling.core_id).pkru.can_read(5)

    def test_works_run_in_fifo_order(self, kernel, process):
        sleeper = process.spawn_task()
        order = []
        sleeper.task_work_add(lambda t: order.append(1))
        sleeper.task_work_add(lambda t: order.append(2))
        kernel.scheduler.schedule(sleeper)
        assert order == [1, 2]


class TestProcessLifecycle:
    def test_exit_task_removes_from_process(self, kernel, process):
        task = process.spawn_task()
        kernel.scheduler.schedule(task)
        process.exit_task(task)
        assert task not in process.live_tasks()
        assert not task.running

    def test_processes_have_isolated_address_spaces(self, kernel):
        p1 = kernel.create_process()
        p2 = kernel.create_process()
        addr = kernel.sys_mmap(p1.main_task, PAGE_SIZE, RW)
        p1.main_task.write(addr, b"p1 data")
        # Same numeric address is unmapped in p2.
        assert p2.main_task.try_read(addr, 7) is None
