"""Tasks, scheduler placement, task_work, and rescheduling IPIs."""

import pytest

from repro.consts import PAGE_SIZE, PROT_READ, PROT_WRITE
from repro.hw.pkru import KEY_RIGHTS_NONE, KEY_RIGHTS_READ, PKRU
from repro.kernel.sched import QuantumSink
from repro.kernel.task import WaitQueue

RW = PROT_READ | PROT_WRITE


class TestTaskPkru:
    def test_tasks_start_with_default_deny(self, process):
        task = process.spawn_task()
        assert task.pkru.value == PKRU.deny_all_but_default().value

    def test_wrpkru_updates_task_and_core(self, kernel, task):
        task.wrpkru(0)
        assert task.pkru.value == 0
        assert kernel.machine.core(task.core_id).pkru.value == 0

    def test_pkey_set_get_roundtrip(self, kernel, task):
        task.pkey_set(4, KEY_RIGHTS_READ)
        assert task.pkey_get(4) == KEY_RIGHTS_READ
        task.pkey_set(4, KEY_RIGHTS_NONE)
        assert task.pkey_get(4) == KEY_RIGHTS_NONE

    def test_memory_ops_require_a_core(self, process):
        parked = process.spawn_task()
        with pytest.raises(RuntimeError):
            parked.read(0x1000, 1)

    def test_try_read_swallows_faults(self, kernel, task):
        assert task.try_read(0xDEAD000, 8) is None


class TestScheduler:
    def test_schedule_loads_task_pkru_into_core(self, kernel, process):
        task = process.spawn_task()
        task.pkru = PKRU.allow_all()
        kernel.scheduler.schedule(task)
        assert kernel.machine.core(task.core_id).pkru.value == 0

    def test_unschedule_frees_the_core(self, kernel, process):
        task = process.spawn_task()
        core_id = kernel.scheduler.schedule(task)
        kernel.scheduler.unschedule(task)
        assert not task.running
        other = process.spawn_task()
        assert kernel.scheduler.schedule(other, core_id=core_id) == core_id

    def test_double_schedule_rejected(self, kernel, process, task):
        with pytest.raises(RuntimeError):
            kernel.scheduler.schedule(task)

    def test_busy_core_rejected(self, kernel, process, task):
        other = process.spawn_task()
        with pytest.raises(RuntimeError):
            kernel.scheduler.schedule(other, core_id=task.core_id)

    def test_running_tasks_filters_by_process(self, kernel, process):
        other_process = kernel.create_process()
        assert kernel.scheduler.running_tasks(process) == [
            process.main_task]
        assert kernel.scheduler.running_tasks(other_process) == [
            other_process.main_task]
        assert len(kernel.scheduler.running_tasks()) == 2


class TestTaskWork:
    def test_work_runs_on_resched_ipi(self, kernel, process, task):
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)
        ran = []
        sibling.task_work_add(lambda t: ran.append(t.tid))
        assert kernel.scheduler.send_resched_ipi(sibling)
        assert ran == [sibling.tid]
        assert not sibling.has_pending_task_work()

    def test_ipi_to_sleeping_task_is_a_noop(self, kernel, process):
        sleeper = process.spawn_task()
        sleeper.task_work_add(lambda t: None)
        assert not kernel.scheduler.send_resched_ipi(sleeper)
        assert sleeper.has_pending_task_work()  # runs at next schedule

    def test_work_runs_at_schedule_in(self, kernel, process):
        sleeper = process.spawn_task()
        ran = []
        sleeper.task_work_add(lambda t: ran.append("work"))
        kernel.scheduler.schedule(sleeper)
        assert ran == ["work"]

    def test_pkru_edit_in_task_work_reaches_core(self, kernel, process):
        """The do_pkey_sync pattern: task_work rewrites PKRU; the kernel
        exit path loads it into the core."""
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)

        def grant(task):
            task.pkru = task.pkru.with_rights(5, KEY_RIGHTS_READ)

        sibling.task_work_add(grant)
        kernel.scheduler.send_resched_ipi(sibling)
        assert kernel.machine.core(sibling.core_id).pkru.can_read(5)

    def test_works_run_in_fifo_order(self, kernel, process):
        sleeper = process.spawn_task()
        order = []
        sleeper.task_work_add(lambda t: order.append(1))
        sleeper.task_work_add(lambda t: order.append(2))
        kernel.scheduler.schedule(sleeper)
        assert order == [1, 2]


class TestWaitQueue:
    def test_wake_one_is_fifo(self, process):
        wq = WaitQueue("test")
        a, b = process.spawn_task(), process.spawn_task()
        wq.add(a)
        wq.add(b)
        assert wq.wake_one() is a
        assert wq.wake_one() is b
        assert wq.wake_one() is None

    def test_wake_clears_waiting_state(self, process):
        wq = WaitQueue("test")
        waiter = process.spawn_task()
        waiter.state = "blocked"
        wq.add(waiter)
        assert waiter.waiting_on is wq
        wq.wake_all()
        assert waiter.waiting_on is None
        assert waiter.state == "runnable"

    def test_on_wake_callback_fires(self, process):
        wq = WaitQueue("test")
        woken = []
        waiter = process.spawn_task()
        wq.add(waiter, on_wake=woken.append)
        wq.wake_one()
        assert woken == [waiter]

    def test_double_wait_rejected(self, process):
        wq, other = WaitQueue("a"), WaitQueue("b")
        waiter = process.spawn_task()
        wq.add(waiter)
        with pytest.raises(RuntimeError):
            wq.add(waiter)
        with pytest.raises(RuntimeError):
            other.add(waiter)

    def test_remove_cancels_the_wait(self, process):
        wq = WaitQueue("test")
        waiter = process.spawn_task()
        wq.add(waiter)
        assert wq.remove(waiter)
        assert waiter.waiting_on is None
        assert not wq.remove(waiter)
        assert wq.wake_one() is None

    def test_exit_task_leaves_wait_queues(self, kernel, process):
        """A dying waiter must not linger on the queue (a later wake
        would resurrect a dead task)."""
        wq = WaitQueue("test")
        waiter = process.spawn_task()
        wq.add(waiter)
        process.exit_task(waiter)
        assert len(wq) == 0
        assert waiter.waiting_on is None


class TestDeadlineWakeTiesUnderDelay:
    """The exact-tie corner: an injected delay stretches the waker's
    operation so the clock lands *precisely on* the waiter's deadline.
    The contract says the wake still wins — expiry only claims waiters
    the caller has not already woken — and the loser path (expire
    first) must be just as deterministic."""

    def _tie(self, kernel, process, extra: float):
        from repro.faults.inject import FaultInjector, delay

        clock = kernel.clock
        wq = WaitQueue("tie")
        events = []
        waiter = process.spawn_task()
        waiter.state = "blocked"
        deadline = clock.now + 100.0 + extra
        wq.add(waiter, on_wake=lambda t: events.append("wake"),
               deadline=deadline,
               on_timeout=lambda t: events.append("timeout"),
               now=clock.now)
        injector = FaultInjector()
        kernel.machine.obs.add_sink(injector)
        try:
            injector.arm("net.link.rx", occurrence=1,
                         action=delay(clock, extra))
            clock.charge(100.0, site="net.link.rx")
        finally:
            kernel.machine.obs.remove_sink(injector)
        assert clock.now == deadline  # the delay made it an exact tie
        return clock, wq, waiter, events

    def test_wake_wins_an_exact_tie(self, kernel, process):
        clock, wq, waiter, events = self._tie(kernel, process, 400.0)
        assert wq.wake_one() is waiter
        assert wq.expire(clock.now) == []
        assert not wq.timeout(waiter)
        assert events == ["wake"]
        assert wq.stats_timeouts == 0

    def test_expire_claims_the_tie_when_nothing_wakes(self, kernel,
                                                      process):
        # deadline <= now is inclusive: with no wake driven first, the
        # exact-tie waiter times out (a waiter can never be left parked
        # past its deadline just because the clock stopped *on* it).
        clock, wq, waiter, events = self._tie(kernel, process, 400.0)
        assert wq.expire(clock.now) == [waiter]
        assert wq.wake_one() is None
        assert events == ["timeout"]
        assert wq.stats_timeouts == 1

    def test_tied_deadlines_expire_in_arrival_order_after_delay(
            self, kernel, process):
        clock, wq, first, events = self._tie(kernel, process, 300.0)
        second = process.spawn_task()
        second.state = "blocked"
        wq.add(second, deadline=clock.now,
               on_timeout=lambda t: events.append("timeout2"),
               now=clock.now)
        assert wq.expire(clock.now) == [first, second]
        assert events == ["timeout", "timeout2"]


class TestWaitQueueDeadlines:
    def test_expire_orders_by_deadline_not_arrival(self, process):
        """The earlier deadline times out first even when that waiter
        enqueued later."""
        wq = WaitQueue("test")
        late = process.spawn_task()
        early = process.spawn_task()
        wq.add(late, deadline=200.0, now=0.0)     # enqueued first
        wq.add(early, deadline=100.0, now=0.0)    # earlier deadline
        assert wq.expire(150.0) == [early]
        assert wq.expire(150.0) == []             # late not due yet
        assert wq.expire(250.0) == [late]
        assert len(wq) == 0

    def test_expire_ties_break_by_arrival(self, process):
        wq = WaitQueue("test")
        a, b = process.spawn_task(), process.spawn_task()
        wq.add(a, deadline=100.0)
        wq.add(b, deadline=100.0)
        assert wq.expire(100.0) == [a, b]

    def test_next_deadline_is_the_minimum(self, process):
        wq = WaitQueue("test")
        assert wq.next_deadline() is None
        wq.add(process.spawn_task(), deadline=300.0)
        wq.add(process.spawn_task())               # forever waiter
        wq.add(process.spawn_task(), deadline=100.0)
        assert wq.next_deadline() == 100.0

    def test_wake_beats_pending_timeout(self, process):
        """The wake-vs-timeout race is deterministic: once woken, a
        waiter can no longer time out."""
        wq = WaitQueue("test")
        fired = []
        waiter = process.spawn_task()
        wq.add(waiter, deadline=100.0, on_timeout=fired.append)
        assert wq.wake_one() is waiter
        assert not wq.timeout(waiter)              # wake won
        assert wq.expire(1e9) == []
        assert fired == []
        assert wq.stats_wakes == 1
        assert wq.stats_timeouts == 0

    def test_timeout_fires_on_timeout_not_on_wake(self, process):
        wq = WaitQueue("test")
        woken, timed_out = [], []
        waiter = process.spawn_task()
        waiter.state = "blocked"
        wq.add(waiter, on_wake=woken.append, deadline=50.0,
               on_timeout=timed_out.append)
        assert wq.timeout(waiter)
        assert (woken, timed_out) == ([], [waiter])
        assert waiter.waiting_on is None
        assert waiter.state == "runnable"
        assert wq.stats_timeouts == 1

    def test_timed_out_waiter_leaves_no_residue(self, process):
        """After expiry the waiter is fully gone: not wakeable, not
        re-expirable, free to park again."""
        wq = WaitQueue("test")
        waiter = process.spawn_task()
        wq.add(waiter, deadline=10.0)
        assert wq.expire(10.0) == [waiter]
        assert wq.wake_one() is None
        assert wq.expire(1e9) == []
        wq.add(waiter)                             # no double-wait error
        assert wq.wake_one() is waiter

    def test_expired_dead_waiter_is_reaped_not_timed_out(self, process):
        wq = WaitQueue("test")
        fired = []
        waiter = process.spawn_task()
        wq.add(waiter, deadline=10.0, on_timeout=fired.append)
        waiter.state = "dead"
        assert wq.expire(100.0) == []
        assert fired == []
        assert wq.stats_dead_reaped == 1
        assert wq.stats_timeouts == 0

    def test_killed_waiter_never_absorbs_a_wake(self, kernel, process):
        """Regression (the kill-while-parked bug): a task killed while
        parked must neither be woken nor steal a wake a live waiter
        needed."""
        from repro.faults.signals import SEGV_PKUERR, SIGSEGV, Siginfo

        wq = WaitQueue("test")
        doomed, survivor = process.spawn_task(), process.spawn_task()
        doomed.enable_signals()
        kernel.scheduler.schedule(doomed)  # the IPI needs a core
        wq.add(doomed)
        wq.add(survivor)
        kernel.signal_task(doomed,
                           Siginfo(SIGSEGV, SEGV_PKUERR, si_addr=0))
        assert doomed.state == "dead"
        # The kill path detached the dying task before its death hooks.
        assert doomed.waiting_on is None
        assert all(entry.task is not doomed for entry in wq.entries())
        assert wq.wake_one() is survivor


class TestRunQueuesAndSlicing:
    def test_enqueue_dispatch_fifo(self, kernel, process):
        sched = kernel.scheduler
        a, b = process.spawn_task(), process.spawn_task()
        sched.enqueue(a, core_id=3)
        sched.enqueue(b, core_id=3)
        assert sched.runnable_count(3) == 2
        assert sched.dispatch(3) is a
        assert a.running and a.core_id == 3

    def test_dispatch_on_busy_core_rejected(self, kernel, process, task):
        sched = kernel.scheduler
        sched.enqueue(process.spawn_task(), core_id=task.core_id)
        with pytest.raises(RuntimeError):
            sched.dispatch(task.core_id)

    def test_preempt_requeues_at_tail(self, kernel, process):
        sched = kernel.scheduler
        a, b = process.spawn_task(), process.spawn_task()
        sched.enqueue(a, core_id=3)
        sched.enqueue(b, core_id=3)
        sched.dispatch(3)
        sched.preempt(3)
        assert sched.preemptions == 1
        assert sched.dispatch(3) is b        # a went to the tail
        assert sched.runnable_count(3) == 1

    def test_quantum_sink_latches_need_resched(self, kernel):
        sink = kernel.scheduler.enable_time_slicing(quantum=1000.0)
        sink.begin_slice()
        kernel.clock.charge(600.0, site="test.work")
        assert not sink.need_resched
        kernel.clock.charge(600.0, site="test.work")
        assert sink.need_resched
        assert sink.expirations == 1
        sink.end_slice()
        kernel.clock.charge(5000.0, site="test.work")  # inactive: ignored
        assert sink.slice_used == 1200.0
        kernel.scheduler.disable_time_slicing()

    def test_double_enable_rejected(self, kernel):
        kernel.scheduler.enable_time_slicing(quantum=10.0)
        with pytest.raises(RuntimeError):
            kernel.scheduler.enable_time_slicing(quantum=10.0)
        kernel.scheduler.disable_time_slicing()


class TestShootdownRegressions:
    def test_non_running_initiator_rejected_before_any_charge(
            self, kernel, process):
        """The initiator check must run before any IPI is charged: a
        half-executed shootdown would skew the cycle ledger forever."""
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)  # remote target
        parked = process.spawn_task()                     # never running
        start = kernel.clock.snapshot()
        ipis = kernel.scheduler.ipis_sent
        with pytest.raises(RuntimeError):
            kernel.scheduler.tlb_shootdown(process, initiator=parked)
        assert kernel.clock.snapshot() == start
        assert kernel.scheduler.ipis_sent == ipis

    def test_cross_process_initiator_core_is_flushed(self, kernel, process):
        """Cores have no ASIDs: when the initiating core runs a task of
        a *different* process, its TLB can still hold stale translations
        of the process being flushed — the local flush is mandatory."""
        other = kernel.create_process()
        victim = other.main_task
        addr = kernel.sys_mmap(victim, PAGE_SIZE, RW)
        victim.write(addr, b"x")              # fills this core's TLB
        core_id = victim.core_id
        core = kernel.machine.core(core_id)
        vpn = addr // PAGE_SIZE
        assert core.tlb.probe(vpn) is not None
        kernel.scheduler.unschedule(victim)
        initiator = process.spawn_task()      # process A task, same core
        kernel.scheduler.schedule(initiator, core_id=core_id)
        kernel.scheduler.tlb_shootdown(other, initiator=initiator)
        assert core.tlb.probe(vpn) is None

    def test_idle_core_holding_translations_is_flushed(self, kernel,
                                                       process):
        """Regression (keyscale at scale): a core whose worker blocked
        (e.g. parked on key_waiters during pkey exhaustion) sits idle
        but still caches the process's translations.  Pre-fix the
        shootdown only targeted cores *currently running* a task of the
        process, so the idle core kept stale prot/pkey tags and the
        worker faulted on resume."""
        worker = process.spawn_task()
        kernel.scheduler.schedule(worker)
        addr = kernel.sys_mmap(worker, PAGE_SIZE, RW)
        worker.write(addr, b"x")              # fills this core's TLB
        core = kernel.machine.core(worker.core_id)
        vpn = addr // PAGE_SIZE
        assert core.tlb.probe(vpn) is not None
        initiator = process.spawn_task()
        kernel.scheduler.schedule(initiator)  # lands on another core
        assert initiator.core_id != core.core_id
        kernel.scheduler.unschedule(worker)   # core now idle
        ipis = kernel.scheduler.ipis_sent
        flushes = core.tlb.stats.full_flushes
        remote = kernel.scheduler.tlb_shootdown(process,
                                                initiator=initiator)
        assert core.tlb.probe(vpn) is None    # pre-fix: still resident
        assert core.tlb.stats.full_flushes == flushes + 1
        assert kernel.scheduler.ipis_sent == ipis + remote

    def test_full_flush_retracts_shootdown_targeting(self, kernel,
                                                     process):
        """Once a core full-flushed, it holds nothing of the process —
        later shootdowns must not keep IPI-ing it forever."""
        worker = process.spawn_task()
        kernel.scheduler.schedule(worker)
        addr = kernel.sys_mmap(worker, PAGE_SIZE, RW)
        worker.write(addr, b"x")
        core = kernel.machine.core(worker.core_id)
        initiator = process.spawn_task()
        kernel.scheduler.schedule(initiator)
        kernel.scheduler.unschedule(worker)
        first = kernel.scheduler.tlb_shootdown(process,
                                               initiator=initiator)
        assert not core.tlb.may_hold(process.page_table)
        flushes = core.tlb.stats.full_flushes + core.tlb.stats.noop_flushes
        second = kernel.scheduler.tlb_shootdown(process,
                                                initiator=initiator)
        assert second == first - 1            # the idle core dropped out
        assert (core.tlb.stats.full_flushes
                + core.tlb.stats.noop_flushes) == flushes


class TestProcessLifecycle:
    def test_exit_task_removes_from_process(self, kernel, process):
        task = process.spawn_task()
        kernel.scheduler.schedule(task)
        process.exit_task(task)
        assert task not in process.live_tasks()
        assert not task.running

    def test_processes_have_isolated_address_spaces(self, kernel):
        p1 = kernel.create_process()
        p2 = kernel.create_process()
        addr = kernel.sys_mmap(p1.main_task, PAGE_SIZE, RW)
        p1.main_task.write(addr, b"p1 data")
        # Same numeric address is unmapped in p2.
        assert p2.main_task.try_read(addr, 7) is None
