"""Invalidation regressions for the syscall-side caches.

The mprotect fast path keeps two host-side caches: the per-process
protect-VMA cache (exact-fit range -> VMA, validated by the VMA tree's
structural version) and the per-task PKRU-encode memo (``(key,
rights) -> PKRU`` against a stamped base value).  Each test here
encodes a way either cache could serve a stale hit; every one fails
against a cache that skips the corresponding invalidation.  Both
caches also register their counters as ``obs.audit()`` invariants —
the tamper tests prove the audit actually trips.
"""

from __future__ import annotations

import pytest

from repro.consts import (
    PAGE_SIZE,
    PKEY_DISABLE_ACCESS,
    PKEY_DISABLE_WRITE,
    PROT_READ,
    PROT_WRITE,
)
from repro.hw.pkru import PKRU, PkruEncodeMemo

RW = PROT_READ | PROT_WRITE


class TestProtectVmaCache:
    def test_repeat_protect_hits_cache(self, kernel, task):
        """The table1 shape: mprotect toggles over one exact-fit VMA
        must hit the cache from the second call on."""
        mm = task.process.mm
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_READ)
        misses_after_first = mm.vma_cache_misses
        for i in range(4):
            kernel.sys_mprotect(task, addr, PAGE_SIZE,
                                RW if i % 2 else PROT_READ)
        assert mm.vma_cache_misses == misses_after_first
        assert mm.vma_cache_hits >= 4
        assert (mm.vma_cache_hits + mm.vma_cache_misses
                == mm.vma_cache_lookups)

    def test_munmap_remap_invalidates(self, kernel, task):
        """munmap + remap at the same address must not reuse the dead
        VMA: the new mapping has different attributes, and a stale hit
        would write protections through a VMA no longer in the tree."""
        mm = task.process.mm
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_READ)
        stale = mm._protect_cache_vma
        assert stale is not None
        kernel.sys_munmap(task, addr, PAGE_SIZE)
        new_addr = kernel.sys_mmap(task, PAGE_SIZE, RW, addr=addr)
        assert new_addr == addr
        kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_READ)
        live = mm.vmas.find(addr)
        assert live is not stale
        assert live.prot == PROT_READ
        # The dead VMA kept whatever it had; the protect landed on the
        # live one.
        ok, _ = kernel.machine.obs.audit()
        assert ok, kernel.machine.obs.invariant_failures()

    def test_split_invalidates(self, kernel, task):
        """A sub-range protect splits the cached VMA; the full-range
        entry must not survive the split."""
        mm = task.process.mm
        addr = kernel.sys_mmap(task, 4 * PAGE_SIZE, RW)
        kernel.sys_mprotect(task, addr, 4 * PAGE_SIZE, PROT_READ)
        kernel.sys_mprotect(task, addr + PAGE_SIZE, PAGE_SIZE, RW)
        # Re-protect the original full range: the old single VMA is
        # gone (split into three); a stale hit would update only it.
        kernel.sys_mprotect(task, addr, 4 * PAGE_SIZE, PROT_READ)
        for vma in mm.vmas:
            if vma.start >= addr and vma.end <= addr + 4 * PAGE_SIZE:
                assert vma.prot == PROT_READ
        ok, _ = kernel.machine.obs.audit()
        assert ok, kernel.machine.obs.invariant_failures()

    def test_cache_not_stored_on_multi_vma_range(self, kernel, task):
        """A range spanning several VMAs (or splitting) must not seed
        the cache — only the proven exact-fit single-VMA case may."""
        mm = task.process.mm
        addr = kernel.sys_mmap(task, 4 * PAGE_SIZE, RW)
        kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_READ)  # splits
        assert mm._protect_cache_key != (addr, addr + 4 * PAGE_SIZE)

    def test_audit_trips_on_corrupt_cache(self, kernel, task):
        """The registered invariant must notice a cache entry pointing
        at a VMA that is no longer what the tree holds for the range."""
        from repro.kernel.vma import VMA
        mm = task.process.mm
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_READ)
        assert mm._protect_cache_vma is not None
        mm._protect_cache_vma = VMA(addr, addr + PAGE_SIZE, RW)
        ok, _ = kernel.machine.obs.audit()
        assert not ok
        failures = kernel.machine.obs.invariant_failures()
        assert any("mm_protect_cache" in name for name in failures)

    def test_audit_trips_on_counter_leak(self, kernel, task):
        mm = task.process.mm
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_READ)
        mm.vma_cache_hits += 7
        ok, _ = kernel.machine.obs.audit()
        assert not ok


class TestPkruEncodeMemo:
    def test_repeat_kernel_encodes_hit(self, kernel, task):
        """pkey_alloc's initial-rights install is the hot caller: with
        a stable base PKRU the memo must hit from the second alloc of
        the same (key, rights) on."""
        # Two warmup rounds: the first alloc populates the memo, the
        # second restamps it against the post-grant base value (which
        # pkey_free leaves in place — it never touches PKRU).
        for _ in range(2):
            key = kernel.sys_pkey_alloc(task)
            kernel.sys_pkey_free(task, key)
        memo = task._pkru_memo
        hits_before = memo.hits
        for _ in range(3):
            key = kernel.sys_pkey_alloc(task)
            kernel.sys_pkey_free(task, key)
        assert memo.hits >= hits_before + 3
        assert memo.hits + memo.misses == memo.encodes

    def test_wrpkru_invalidates(self, kernel, task):
        """A userspace WRPKRU changes the base value: a cached encode
        against the old base must not be served afterwards."""
        key = kernel.sys_pkey_alloc(task)
        memo = task._pkru_memo
        # Populate through the kernel-side path (no WRPKRU of its own;
        # pkey_set would immediately self-invalidate via wrpkru).
        task.set_pkru_rights_from_kernel(key, PKEY_DISABLE_WRITE)
        assert memo._results, "kernel encode should populate the memo"
        invalidations_before = memo.invalidations
        # Direct WRPKRU to a different value (deny the key entirely).
        new = task.pkru.with_rights(key,
                                    PKEY_DISABLE_ACCESS
                                    | PKEY_DISABLE_WRITE)
        task.wrpkru(new.value)
        assert memo.invalidations > invalidations_before
        assert not memo._results
        # Re-encoding against the new base must reflect it, not the
        # stale cached result.
        task.pkey_set(key, 0)
        assert task.pkru.rights(key) == 0
        assert task.pkru.value == new.with_rights(key, 0).value
        ok, _ = kernel.machine.obs.audit()
        assert ok, kernel.machine.obs.invariant_failures()

    def test_external_pkru_swap_is_caught_lazily(self, kernel, task):
        """The signal-restore / context-switch path replaces
        ``task.pkru`` without telling the memo; the next encode must
        detect the base mismatch instead of serving a stale value."""
        key = kernel.sys_pkey_alloc(task)
        task.pkey_set(key, PKEY_DISABLE_WRITE)
        # Swap the base behind the memo's back (what sigreturn does).
        task.pkru = PKRU.allow_all()
        task.set_pkru_rights_from_kernel(key, PKEY_DISABLE_ACCESS)
        expected = PKRU.allow_all().with_rights(key,
                                                PKEY_DISABLE_ACCESS)
        assert task.pkru.value == expected.value
        ok, _ = kernel.machine.obs.audit()
        assert ok, kernel.machine.obs.invariant_failures()

    def test_invalid_rights_never_served_from_cache(self):
        """Bogus rights must raise on every call — a packed-int memo
        key could alias an invalid request onto a cached valid one."""
        memo = PkruEncodeMemo()
        base = PKRU.allow_all()
        memo.encode(base, 1, PKEY_DISABLE_WRITE)
        with pytest.raises(ValueError):
            memo.encode(base, 1, 5)
        with pytest.raises(ValueError):
            memo.encode(base, 1, 5)  # and again, post-populate

    def test_audit_trips_on_counter_leak(self, kernel, task):
        key = kernel.sys_pkey_alloc(task)
        task.pkey_set(key, PKEY_DISABLE_WRITE)
        task._pkru_memo.hits += 1
        ok, _ = kernel.machine.obs.audit()
        assert not ok
        failures = kernel.machine.obs.invariant_failures()
        assert any("pkru_encode_memo" in name for name in failures)

    def test_audit_trips_on_stale_cached_result(self, kernel, task):
        """A cached encode that no longer re-derives from the stamped
        base is exactly the stale-hit bug class; plant one and make
        sure the audit finds it."""
        key = kernel.sys_pkey_alloc(task)
        task.set_pkru_rights_from_kernel(key, PKEY_DISABLE_WRITE)
        memo = task._pkru_memo
        assert memo._results, "memo should hold at least one encode"
        k = next(iter(memo._results))
        memo._results[k] = PKRU.allow_all()
        ok, _ = kernel.machine.obs.audit()
        assert not ok
