"""The key-wait watchdog: wait-for graphs, deadlock cycles, stalls."""

import pytest

from repro.consts import PAGE_SIZE, PROT_READ, PROT_WRITE
from repro.kernel.watchdog import Watchdog, find_cycles, wait_for_graph

RW = PROT_READ | PROT_WRITE


def _pin_all_keys(lib, task, start_vkey=100):
    """Pin enough groups that every hardware key is held."""
    vkeys = []
    while lib._cache.free_keys:
        vkey = start_vkey + len(vkeys)
        lib.mpk_mmap(task, vkey, PAGE_SIZE, RW)
        lib.mpk_begin(task, vkey, RW)
        vkeys.append(vkey)
    return vkeys


class TestFindCycles:
    def test_empty(self):
        assert find_cycles({}, set()) == []

    def test_self_loop(self):
        assert find_cycles({1: {1}}, {1}) == [[1]]

    def test_two_cycle(self):
        graph = {1: {2}, 2: {1}}
        assert find_cycles(graph, {1, 2}) == [[1, 2]]

    def test_runnable_holder_breaks_the_cycle(self):
        """A holder that is not parked can still run mpk_end, so the
        wait is not a deadlock."""
        graph = {1: {2}, 2: {1}}
        assert find_cycles(graph, {1}) == []

    def test_chain_without_cycle(self):
        graph = {1: {2}, 2: {3}}
        assert find_cycles(graph, {1, 2, 3}) == []


class TestWatchdogDeadlock:
    def test_constructed_pin_cycle_is_detected(self, kernel, process,
                                               task, lib):
        """The acceptance scenario: every key pinned by tasks that are
        themselves parked waiting for a key — the watchdog must name
        the cycle, and audit() must fail until it breaks."""
        watchdog = Watchdog(kernel)
        watchdog.watch(lib)
        _pin_all_keys(lib, task)
        lib.key_waiters.add(task, now=kernel.clock.now)

        graph = wait_for_graph(lib)
        assert graph[task.tid] and task.tid in graph[task.tid]

        report = watchdog.scan()
        assert report.deadlocks == [[task.tid]]
        assert watchdog.deadlocks_detected == 1
        assert kernel.machine.obs.metric(
            "kernel.watchdog.deadlock").count == 1

        ok, _ = kernel.machine.obs.audit()
        assert not ok  # the watchdog.pid invariant fails while wedged

        lib.key_waiters.remove(task)
        assert watchdog.scan().deadlocks == []
        ok, _ = kernel.machine.obs.audit()
        assert ok

    def test_free_key_means_no_deadlock(self, kernel, process, task,
                                        lib):
        watchdog = Watchdog(kernel)
        watchdog.watch(lib)
        lib.mpk_mmap(task, 50, PAGE_SIZE, RW)
        lib.mpk_begin(task, 50, RW)          # keys remain free
        lib.key_waiters.add(task, now=kernel.clock.now)
        assert watchdog.scan().deadlocks == []
        lib.key_waiters.remove(task)

    def test_evictable_group_means_no_deadlock(self, kernel, process,
                                               task, lib):
        """An unpinned cached group can be evicted to satisfy the
        waiter, so parked pin-holders are not wedged."""
        watchdog = Watchdog(kernel)
        watchdog.watch(lib)
        vkeys = _pin_all_keys(lib, task)
        lib.mpk_end(task, vkeys[0])          # cached but unpinned now
        lib.key_waiters.add(task, now=kernel.clock.now)
        assert watchdog.scan().deadlocks == []
        lib.key_waiters.remove(task)

    def test_runnable_holder_means_no_deadlock(self, kernel, process,
                                               task, lib):
        """Keys all pinned by the (runnable) main task while a second
        task waits: not a deadlock — the holder can still mpk_end."""
        watchdog = Watchdog(kernel)
        watchdog.watch(lib)
        _pin_all_keys(lib, task)
        waiter = process.spawn_task()
        lib.key_waiters.add(waiter, now=kernel.clock.now)
        report = watchdog.scan()
        assert report.deadlocks == []
        assert report.waiters == 1
        lib.key_waiters.remove(waiter)


class TestWatchdogStalls:
    def test_long_parked_waiter_is_flagged(self, kernel, process, task,
                                           lib):
        watchdog = Watchdog(kernel, stall_threshold=1_000.0)
        watchdog.watch(lib)
        waiter = process.spawn_task()
        lib.key_waiters.add(waiter, now=kernel.clock.now)
        kernel.clock.charge(5_000.0, site="kernel.watchdog.scan")
        report = watchdog.scan()
        assert report.stalls and report.stalls[0][0] == waiter.tid
        assert report.stalls[0][1] >= 1_000.0
        assert watchdog.stalls_detected == 1
        assert kernel.machine.obs.metric(
            "kernel.watchdog.stall").count == 1
        assert not report.ok
        lib.key_waiters.remove(waiter)

    def test_fresh_waiter_not_flagged(self, kernel, process, task, lib):
        watchdog = Watchdog(kernel, stall_threshold=1_000.0)
        watchdog.watch(lib)
        waiter = process.spawn_task()
        lib.key_waiters.add(waiter, now=kernel.clock.now)
        report = watchdog.scan()
        assert report.stalls == []
        assert report.waiters == 1
        lib.key_waiters.remove(waiter)

    def test_scan_charges_the_watchdog_site(self, kernel, process,
                                            task, lib):
        watchdog = Watchdog(kernel)
        watchdog.watch(lib)
        before = kernel.machine.obs.aggregator.cycles.get(
            "kernel.watchdog.scan", 0.0)
        watchdog.scan()
        after = kernel.machine.obs.aggregator.cycles[
            "kernel.watchdog.scan"]
        assert after == before + kernel.costs.watchdog_scan


class TestKeyDemand:
    def test_tagged_waiters_are_aggregated_per_vkey(self, kernel,
                                                    process, task, lib):
        from repro.kernel.watchdog import key_demand

        a, b, c = (process.spawn_task() for _ in range(3))
        for waiter, vkey in ((a, 70), (b, 70), (c, 71)):
            waiter.wanted_vkey = vkey
            lib.key_waiters.add(waiter, now=kernel.clock.now)
        assert key_demand(lib) == {70: 2, 71: 1}

    def test_untagged_and_dead_waiters_are_skipped(self, kernel,
                                                   process, task, lib):
        from repro.kernel.watchdog import key_demand

        untagged = process.spawn_task()
        lib.key_waiters.add(untagged, now=kernel.clock.now)
        dead = process.spawn_task()
        dead.wanted_vkey = 70
        lib.key_waiters.add(dead, now=kernel.clock.now)
        dead.state = "dead"
        assert key_demand(lib) == {}

    def test_scan_reports_and_records_contention(self, kernel, process,
                                                 task, lib):
        watchdog = Watchdog(kernel)
        watchdog.watch(lib)
        waiter = process.spawn_task()
        waiter.wanted_vkey = 70
        lib.key_waiters.add(waiter, now=kernel.clock.now)
        report = watchdog.scan()
        assert report.contention == {70: 1}
        series = kernel.machine.obs.metric("kernel.watchdog.contention")
        assert series.count == 1 and series.last == 1.0
        lib.key_waiters.remove(waiter)
        # Contention-free scans record nothing (determinism contract:
        # metric summaries stay byte-identical for quiet workloads).
        assert watchdog.scan().contention == {}
        assert series.count == 1


class TestWatchdogApi:
    def test_double_watch_rejected(self, kernel, lib):
        watchdog = Watchdog(kernel)
        watchdog.watch(lib)
        with pytest.raises(ValueError):
            watchdog.watch(lib)

    def test_threshold_validated(self, kernel):
        with pytest.raises(ValueError):
            Watchdog(kernel, stall_threshold=0.0)
