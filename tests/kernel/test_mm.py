"""MM mechanics: mmap/munmap/protect over VMAs and PTEs."""

import pytest

from repro.consts import (
    DEFAULT_PKEY,
    PAGE_SIZE,
    PROT_EXEC,
    PROT_NONE,
    PROT_READ,
    PROT_WRITE,
    page_number,
)
from repro.errors import InvalidArgument, OutOfMemory
from repro.hw.machine import Machine
from repro.kernel.mm import MM

RW = PROT_READ | PROT_WRITE


@pytest.fixture
def mm():
    return MM(Machine(num_cores=1))


class TestMmap:
    def test_maps_requested_pages(self, mm):
        addr, stats = mm.mmap(3 * PAGE_SIZE, RW)
        assert stats.pages_mapped == 3
        for i in range(3):
            # Demand paging: lookup triggers the minor fault that
            # installs the PTE from the VMA's attributes.
            entry = mm.page_table.lookup(page_number(addr) + i)
            assert entry is not None
            assert entry.prot == RW
            assert entry.pkey == DEFAULT_PKEY

    def test_mmap_allocates_no_frames_until_touched(self, mm):
        mm.mmap(100 * PAGE_SIZE, RW)
        assert mm.machine.memory.allocated_frames == 0
        assert mm.total_mapped_pages() == 100
        assert mm.populated_pages() == 0

    def test_first_touch_takes_a_minor_fault(self, mm):
        addr, _ = mm.mmap(2 * PAGE_SIZE, RW)
        assert mm.minor_faults == 0
        mm.page_table.lookup(page_number(addr))
        assert mm.minor_faults == 1
        assert mm.populated_pages() == 1
        # Re-access does not fault again.
        mm.page_table.lookup(page_number(addr))
        assert mm.minor_faults == 1

    def test_populate_faults_in_whole_range(self, mm):
        addr, _ = mm.mmap(8 * PAGE_SIZE, RW)
        assert mm.populate(addr, 8 * PAGE_SIZE) == 8
        assert mm.populated_pages() == 8
        # Idempotent.
        assert mm.populate(addr, 8 * PAGE_SIZE) == 0

    def test_length_rounds_up_to_pages(self, mm):
        addr, stats = mm.mmap(100, RW)
        assert stats.pages_mapped == 1

    def test_distinct_calls_get_distinct_ranges(self, mm):
        a, _ = mm.mmap(PAGE_SIZE, RW)
        b, _ = mm.mmap(PAGE_SIZE, RW)
        assert a != b
        assert abs(a - b) >= PAGE_SIZE

    def test_zero_length_rejected(self, mm):
        with pytest.raises(InvalidArgument):
            mm.mmap(0, RW)

    def test_overcommit_oom_surfaces_at_fault_time(self):
        """Linux-style overcommit: huge mmaps succeed; the OOM bill
        arrives when touch exceeds physical memory."""
        machine = Machine(num_cores=1, memory_bytes=2 * PAGE_SIZE)
        mm = MM(machine)
        addr, _ = mm.mmap(3 * PAGE_SIZE, RW)  # succeeds (overcommit)
        mm.page_table.lookup(page_number(addr))
        mm.page_table.lookup(page_number(addr) + 1)
        with pytest.raises(OutOfMemory):
            mm.page_table.lookup(page_number(addr) + 2)

    def test_fixed_address_hint(self, mm):
        addr, _ = mm.mmap(PAGE_SIZE, RW, addr=0x7000_0000_0000)
        assert addr == 0x7000_0000_0000


class TestMunmap:
    def test_unmaps_and_frees_frames(self, mm):
        machine = mm.machine
        addr, _ = mm.mmap(2 * PAGE_SIZE, RW)
        mm.populate(addr, 2 * PAGE_SIZE)
        before = machine.memory.allocated_frames
        stats = mm.munmap(addr, 2 * PAGE_SIZE)
        assert stats.pages_unmapped == 2
        assert stats.frames_freed == 2
        assert machine.memory.allocated_frames == before - 2
        assert mm.page_table.lookup(page_number(addr)) is None

    def test_partial_unmap_splits_vma(self, mm):
        addr, _ = mm.mmap(4 * PAGE_SIZE, RW)
        stats = mm.munmap(addr + PAGE_SIZE, 2 * PAGE_SIZE)
        assert stats.pages_unmapped == 2
        assert stats.splits == 2
        assert mm.page_table.lookup(page_number(addr)) is not None
        assert mm.page_table.lookup(page_number(addr) + 3) is not None
        assert mm.page_table.lookup(page_number(addr) + 1) is None

    def test_misaligned_address_rejected(self, mm):
        with pytest.raises(InvalidArgument):
            mm.munmap(123, PAGE_SIZE)


class TestProtect:
    def test_changes_vma_and_ptes(self, mm):
        addr, _ = mm.mmap(2 * PAGE_SIZE, RW)
        stats = mm.protect(addr, 2 * PAGE_SIZE, PROT_READ)
        assert stats.pages_updated == 2
        assert stats.vmas_found == 1
        assert stats.splits == 0
        assert mm.vmas.find(addr).prot == PROT_READ
        assert mm.page_table.lookup(page_number(addr)).prot == PROT_READ

    def test_interior_range_splits_twice(self, mm):
        addr, _ = mm.mmap(4 * PAGE_SIZE, RW)
        stats = mm.protect(addr + PAGE_SIZE, 2 * PAGE_SIZE, PROT_READ)
        assert stats.splits == 2
        assert mm.vmas.find(addr).prot == RW
        assert mm.vmas.find(addr + PAGE_SIZE).prot == PROT_READ
        assert mm.vmas.find(addr + 3 * PAGE_SIZE).prot == RW

    def test_restoring_prot_merges_vmas_back(self, mm):
        addr, _ = mm.mmap(4 * PAGE_SIZE, RW)
        mm.protect(addr + PAGE_SIZE, 2 * PAGE_SIZE, PROT_READ)
        assert len(mm.vmas) == 3
        stats = mm.protect(addr + PAGE_SIZE, 2 * PAGE_SIZE, RW)
        assert stats.merges == 2
        assert len(mm.vmas) == 1

    def test_sets_pkey_when_given(self, mm):
        addr, _ = mm.mmap(PAGE_SIZE, RW)
        mm.protect(addr, PAGE_SIZE, PROT_READ, pkey=7)
        entry = mm.page_table.lookup(page_number(addr))
        assert entry.pkey == 7
        assert mm.vmas.find(addr).pkey == 7

    def test_plain_protect_preserves_pkey(self, mm):
        addr, _ = mm.mmap(PAGE_SIZE, RW)
        mm.protect(addr, PAGE_SIZE, PROT_READ, pkey=7)
        mm.protect(addr, PAGE_SIZE, RW)
        assert mm.page_table.lookup(page_number(addr)).pkey == 7

    def test_pte_prot_override_for_execute_only(self, mm):
        addr, _ = mm.mmap(PAGE_SIZE, RW)
        mm.protect(addr, PAGE_SIZE, PROT_EXEC, pkey=5,
                   pte_prot=PROT_READ | PROT_EXEC)
        assert mm.vmas.find(addr).prot == PROT_EXEC
        entry = mm.page_table.lookup(page_number(addr))
        assert entry.prot == PROT_READ | PROT_EXEC
        assert entry.pkey == 5

    def test_hole_in_range_raises_enomem(self, mm):
        a, _ = mm.mmap(PAGE_SIZE, RW)
        mm.munmap(a, PAGE_SIZE)
        with pytest.raises(OutOfMemory):
            mm.protect(a, PAGE_SIZE, PROT_READ)

    def test_unmapped_tail_raises_enomem(self, mm):
        addr, _ = mm.mmap(PAGE_SIZE, RW)
        with pytest.raises(OutOfMemory):
            mm.protect(addr, 2 * PAGE_SIZE, PROT_READ)

    def test_spans_multiple_vmas(self, mm):
        # Adjacent mappings with different prot so they never merge.
        a, _ = mm.mmap(PAGE_SIZE, RW)
        b, _ = mm.mmap(PAGE_SIZE, PROT_READ, addr=a + PAGE_SIZE)
        stats = mm.protect(a, 2 * PAGE_SIZE, PROT_NONE)
        assert stats.vmas_found == 2
        assert stats.pages_updated == 2

    def test_sparse_mappings_are_separate_vmas(self, mm):
        """The Figure 3 setup: per-page mmap calls leave per-page VMAs
        (no merging because they are not adjacent)."""
        addrs = []
        base = 0x7100_0000_0000
        for i in range(10):
            addr, _ = mm.mmap(PAGE_SIZE, RW, addr=base + 2 * i * PAGE_SIZE)
            addrs.append(addr)
        assert len(mm.vmas) == 10


class TestProtectStatsContract:
    """Regression: the vpns list must be explicitly flagged, not
    silently empty, when the bulk-overlay path skips enumerating
    resident pages — consumers doing precise TLB invalidation need to
    tell 'no resident pages' apart from 'we did not look'."""

    def test_per_page_path_populates_vpns(self, mm):
        addr, _ = mm.mmap(4 * PAGE_SIZE, RW)
        mm.populate(addr, 4 * PAGE_SIZE)
        stats = mm.protect(addr, 4 * PAGE_SIZE, PROT_READ)
        assert stats.vpns_populated
        assert stats.vpns == [page_number(addr) + i for i in range(4)]
        assert stats.pages_updated == 4

    def test_bulk_path_flags_vpns_as_unpopulated(self, mm):
        pages = MM.BULK_PTE_THRESHOLD
        addr, _ = mm.mmap(pages * PAGE_SIZE, RW)
        mm.populate(addr, 8 * PAGE_SIZE)  # some resident pages exist
        stats = mm.protect(addr, pages * PAGE_SIZE, PROT_READ)
        # Pre-fix, vpns was empty with no way to tell it apart from a
        # genuinely-unpopulated range; pages_updated still carries the
        # range cost.
        assert not stats.vpns_populated
        assert stats.vpns == []
        assert stats.pages_updated == pages

    def test_empty_resident_set_is_still_populated_flag_true(self, mm):
        addr, _ = mm.mmap(2 * PAGE_SIZE, RW)  # demand-paged, untouched
        stats = mm.protect(addr, 2 * PAGE_SIZE, PROT_READ)
        assert stats.vpns_populated
        assert stats.vpns == []
        assert stats.pages_updated == 2
