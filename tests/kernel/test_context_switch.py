"""PKRU across context switches: the per-thread register discipline."""

import pytest

from repro.consts import PAGE_SIZE, PROT_READ, PROT_WRITE
from repro.hw.pkru import KEY_RIGHTS_ALL, KEY_RIGHTS_NONE, PKRU
from repro import Kernel, Libmpk, Machine

RW = PROT_READ | PROT_WRITE


@pytest.fixture
def single_core_kernel():
    return Kernel(Machine(num_cores=1))


class TestPkruContextSwitch:
    def test_tasks_sharing_a_core_keep_their_own_pkru(
            self, single_core_kernel):
        """Two tasks alternate on one core; each sees its own PKRU."""
        kernel = single_core_kernel
        process = kernel.create_process(schedule_main=False)
        a = process.main_task
        b = process.spawn_task()

        kernel.scheduler.schedule(a, core_id=0)
        a.pkey_set(5, KEY_RIGHTS_ALL)
        kernel.scheduler.unschedule(a)

        kernel.scheduler.schedule(b, core_id=0)
        assert b.pkey_get(5) == KEY_RIGHTS_NONE  # b's own default view
        b.pkey_set(7, KEY_RIGHTS_ALL)
        kernel.scheduler.unschedule(b)

        kernel.scheduler.schedule(a, core_id=0)
        assert a.pkey_get(5) == KEY_RIGHTS_ALL   # a's grant survived
        assert a.pkey_get(7) == KEY_RIGHTS_NONE  # b's grant is not a's

    def test_domain_window_survives_descheduling(self,
                                                 single_core_kernel):
        """A thread inside mpk_begin keeps its access after being
        switched out and back in."""
        kernel = single_core_kernel
        process = kernel.create_process(schedule_main=False)
        owner = process.main_task
        other = process.spawn_task()

        kernel.scheduler.schedule(owner, core_id=0)
        lib = Libmpk(process)
        lib.mpk_init(owner)
        addr = lib.mpk_mmap(owner, 100, PAGE_SIZE, RW)
        lib.mpk_begin(owner, 100, RW)
        owner.write(addr, b"before switch")
        kernel.scheduler.unschedule(owner)

        # The other task runs on the same core meanwhile — and has no
        # access, even though the core register held the grant moments
        # ago.
        kernel.scheduler.schedule(other, core_id=0)
        assert other.try_read(addr, 1) is None
        kernel.scheduler.unschedule(other)

        kernel.scheduler.schedule(owner, core_id=0)
        assert owner.read(addr, 13) == b"before switch"
        lib.mpk_end(owner, 100)

    def test_pending_sync_applies_before_first_user_access(
            self, single_core_kernel):
        """A descheduled thread that missed a do_pkey_sync picks up the
        new PKRU at switch-in, before it can touch memory."""
        kernel = single_core_kernel
        process = kernel.create_process(schedule_main=False)
        caller = process.main_task
        sleeper = process.spawn_task()

        kernel.scheduler.schedule(caller, core_id=0)
        lib = Libmpk(process)
        lib.mpk_init(caller)
        addr = lib.mpk_mmap(caller, 100, PAGE_SIZE, RW)
        lib.mpk_mprotect(caller, 100, RW)      # global rw
        lib.mpk_mprotect(caller, 100, PROT_READ)  # revoke writes
        assert sleeper.has_pending_task_work()
        kernel.scheduler.unschedule(caller)

        kernel.scheduler.schedule(sleeper, core_id=0)
        assert not sleeper.has_pending_task_work()
        assert sleeper.read(addr, 1) == b"\x00"
        from repro.errors import PkeyFault
        with pytest.raises(PkeyFault):
            sleeper.write(addr, b"x")

    def test_core_register_mirrors_running_task(self,
                                                single_core_kernel):
        kernel = single_core_kernel
        process = kernel.create_process(schedule_main=False)
        task = process.main_task
        task.pkru = PKRU.allow_all()
        kernel.scheduler.schedule(task, core_id=0)
        assert kernel.machine.core(0).pkru == PKRU.allow_all()
