"""/proc-style introspection: smaps and status."""


from repro.consts import PAGE_SIZE, PROT_EXEC, PROT_READ, PROT_WRITE
from repro.kernel.procfs import format_smaps, smaps, status

RW = PROT_READ | PROT_WRITE


class TestSmaps:
    def test_lists_every_vma(self, kernel, process, task):
        a = kernel.sys_mmap(task, 2 * PAGE_SIZE, RW)
        b = kernel.sys_mmap(task, PAGE_SIZE, PROT_READ)
        entries = {e.start: e for e in smaps(process)}
        assert entries[a].size_kb == 8
        assert entries[a].prot == RW
        assert entries[b].prot == PROT_READ

    def test_rss_tracks_population(self, kernel, process, task):
        addr = kernel.sys_mmap(task, 10 * PAGE_SIZE, RW)
        entry = next(e for e in smaps(process) if e.start == addr)
        assert entry.rss_kb == 0
        task.write(addr, b"touch")
        task.write(addr + 3 * PAGE_SIZE, b"touch")
        entry = next(e for e in smaps(process) if e.start == addr)
        assert entry.rss_kb == 8  # two populated pages

    def test_shows_protection_keys(self, kernel, process, task):
        key = kernel.sys_pkey_alloc(task)
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        kernel.sys_pkey_mprotect(task, addr, PAGE_SIZE, RW, key)
        entry = next(e for e in smaps(process) if e.start == addr)
        assert entry.pkey == key

    def test_format_is_smaps_like(self, kernel, process, task):
        addr = kernel.sys_mmap(task, PAGE_SIZE,
                               PROT_READ | PROT_EXEC)
        text = format_smaps(process)
        assert "r-xp" in text
        assert "ProtectionKey:" in text
        assert f"{addr:016x}" in text

    def test_observation_charges_nothing(self, kernel, process, task):
        kernel.sys_mmap(task, PAGE_SIZE, RW)
        before = kernel.clock.now
        smaps(process)
        status(process)
        assert kernel.clock.now == before


class TestStatus:
    def test_summary_fields(self, kernel, process, task):
        addr = kernel.sys_mmap(task, 4 * PAGE_SIZE, RW)
        task.write(addr, b"x")
        info = status(process)
        assert info["pid"] == process.pid
        assert info["threads"] == 1
        assert info["vm_size_kb"] >= 16
        assert info["vm_rss_kb"] >= 4
        assert info["minor_faults"] >= 1
        assert 0 in info["pkeys_allocated"]

    def test_execute_only_key_visible(self, kernel, process, task):
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_EXEC)
        info = status(process)
        assert info["execute_only_pkey"] == \
            process.pkeys.execute_only_pkey


class TestMpkStatsResilience:
    def test_counters_start_at_zero(self, kernel, process):
        from repro.kernel.procfs import mpk_stats

        resilience = mpk_stats(process)["resilience"]
        assert resilience == {
            "worker_deaths": 0, "restarts": 0, "gave_up": 0,
            "shed": 0, "wait_timeouts": 0, "watchdog_stalls": 0,
            "watchdog_deadlocks": 0,
        }

    def test_counters_follow_the_obs_spine(self, kernel, process):
        from repro.kernel.procfs import format_mpk_stats, mpk_stats

        obs = kernel.machine.obs
        obs.record_metric("apps.supervisor.death", 1.0)
        obs.record_metric("apps.supervisor.restart", 1.0)
        obs.record_metric("apps.serving.shed", 1.0)
        obs.record_metric("apps.serving.shed", 1.0)
        obs.record_metric("kernel.watchdog.stall", 123.0)
        kernel.clock.charge(350.0, site="libmpk.keycache.wait_timeout")
        resilience = mpk_stats(process)["resilience"]
        assert resilience["worker_deaths"] == 1
        assert resilience["restarts"] == 1
        assert resilience["shed"] == 2
        assert resilience["wait_timeouts"] == 1
        assert resilience["watchdog_stalls"] == 1
        rendered = format_mpk_stats(process)
        assert "Resilience:" in rendered
        assert "shed=2" in rendered


class TestMpkStatsReplication:
    def test_counters_start_at_zero(self, kernel, process):
        from repro.kernel.procfs import format_mpk_stats, mpk_stats

        replication = mpk_stats(process)["replication"]
        assert replication == {
            "repl_writes": 0, "repl_applied": 0, "repl_acks": 0,
            "hints_queued": 0, "hints_drained": 0,
            "hints_dropped": 0, "sync_pages": 0, "sync_served": 0,
            "sync_retries": 0,
        }
        # An all-zero section stays out of the rendered summary.
        assert "Replication:" not in format_mpk_stats(process)

    def test_counters_follow_the_charge_sites(self, kernel, process):
        from repro.kernel.procfs import format_mpk_stats, mpk_stats

        kernel.clock.charge(600.0, site="net.repl.tx")
        kernel.clock.charge(500.0, site="net.repl.rx")
        kernel.clock.charge(200.0, site="net.repl.hint_queue")
        kernel.clock.charge(200.0, site="net.repl.hint_queue")
        kernel.clock.charge(100.0, site="net.repl.hint_drop")
        kernel.clock.charge(400.0, site="net.repl.sync_apply")
        kernel.clock.charge(300.0, site="net.repl.sync_retry")
        replication = mpk_stats(process)["replication"]
        assert replication["repl_writes"] == 1
        assert replication["repl_applied"] == 1
        assert replication["hints_queued"] == 2
        assert replication["hints_dropped"] == 1
        assert replication["sync_pages"] == 1
        assert replication["sync_retries"] == 1
        rendered = format_mpk_stats(process)
        assert "Replication:" in rendered
        assert "hints_queued=2" in rendered

    def test_cluster_node_counters_surface_through_procfs(self):
        # End to end: a replicated chaos soak leaves real net.repl
        # charges on a node's machine; procfs must mirror them.
        from repro.bench.cluster import (
            ClusterChaosEvent,
            _arm_cluster_script,
            _build_cluster,
        )
        from repro.faults.inject import FaultInjector
        from repro.kernel.procfs import mpk_stats

        cluster, _ = _build_cluster(5, nodes=4, connections=24,
                                    replicas=2)
        injector = FaultInjector()
        _arm_cluster_script(injector, cluster, (ClusterChaosEvent(
            kind="node_kill", site="node1.apps.memcached.request",
            occurrence=3, node="node1"),))
        cluster.attach_injector(injector)
        cluster.run()
        survivor = cluster.nodes["node0"]
        replication = mpk_stats(survivor.process)["replication"]
        assert replication["repl_writes"] > 0 \
            or replication["repl_applied"] > 0
