"""Syscall error paths: every rejection must be a clean, typed errno."""

import pytest

from repro.consts import PAGE_SIZE, PROT_READ, PROT_WRITE
from repro.errors import InvalidArgument, KernelError, NoSpace, OutOfMemory

RW = PROT_READ | PROT_WRITE


class TestMmapErrors:
    def test_zero_length(self, kernel, task):
        with pytest.raises(InvalidArgument):
            kernel.sys_mmap(task, 0, RW)

    def test_negative_length(self, kernel, task):
        with pytest.raises(InvalidArgument):
            kernel.sys_mmap(task, -4096, RW)

    def test_misaligned_fixed_address(self, kernel, task):
        with pytest.raises(InvalidArgument):
            kernel.sys_mmap(task, PAGE_SIZE, RW, addr=0x1234)

    def test_overlapping_fixed_address(self, kernel, task):
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        with pytest.raises(Exception):
            kernel.sys_mmap(task, PAGE_SIZE, RW, addr=addr)


class TestMprotectErrors:
    def test_unmapped_range_is_enomem(self, kernel, task):
        with pytest.raises(OutOfMemory):
            kernel.sys_mprotect(task, 0x7100_0000_0000, PAGE_SIZE,
                                PROT_READ)

    def test_hole_in_range_is_enomem(self, kernel, task):
        a = kernel.sys_mmap(task, PAGE_SIZE, RW)
        kernel.sys_mmap(task, PAGE_SIZE, RW,
                        addr=a + 2 * PAGE_SIZE)  # gap at a+1 page
        with pytest.raises(OutOfMemory):
            kernel.sys_mprotect(task, a, 3 * PAGE_SIZE, PROT_READ)

    def test_misaligned_address(self, kernel, task):
        with pytest.raises(InvalidArgument):
            kernel.sys_mprotect(task, 0x1001, PAGE_SIZE, PROT_READ)

    def test_errors_carry_errno_names(self, kernel, task):
        try:
            kernel.sys_mprotect(task, 0x7100_0000_0000, PAGE_SIZE,
                                PROT_READ)
        except KernelError as exc:
            assert exc.errno == "ENOMEM"
            assert "ENOMEM" in str(exc)


class TestPkeyErrors:
    def test_sixteenth_alloc_is_enospc(self, kernel, task):
        for _ in range(15):
            kernel.sys_pkey_alloc(task)
        with pytest.raises(NoSpace) as exc_info:
            kernel.sys_pkey_alloc(task)
        assert exc_info.value.errno == "ENOSPC"

    def test_free_of_unallocated_key(self, kernel, task):
        with pytest.raises(InvalidArgument):
            kernel.sys_pkey_free(task, 9)

    def test_free_of_out_of_range_key(self, kernel, task):
        with pytest.raises(InvalidArgument):
            kernel.sys_pkey_free(task, 16)
        with pytest.raises(InvalidArgument):
            kernel.sys_pkey_free(task, 0)

    def test_alloc_rejects_unknown_flags(self, kernel, task):
        with pytest.raises(InvalidArgument):
            kernel.sys_pkey_alloc(task, flags=0x4)

    def test_failed_syscalls_still_charge_entry_costs(self, kernel,
                                                      task, measure):
        """Even a rejected syscall crossed into the kernel."""
        def failing():
            with pytest.raises(InvalidArgument):
                kernel.sys_pkey_free(task, 9)

        elapsed = measure(failing, task=task)
        assert elapsed >= kernel.costs.syscall_overhead()
