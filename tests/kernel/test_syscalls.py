"""Syscall layer: mmap/mprotect semantics, costs, TLB shootdowns."""

import pytest

from repro.consts import (
    PAGE_SIZE,
    PROT_EXEC,
    PROT_NONE,
    PROT_READ,
    PROT_WRITE,
)
from repro.errors import PkeyFault, SegmentationFault

RW = PROT_READ | PROT_WRITE


class TestMmapSyscall:
    def test_mapped_memory_is_usable(self, kernel, task):
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        task.write(addr, b"hello world")
        assert task.read(addr, 11) == b"hello world"

    def test_new_pages_read_as_zero(self, kernel, task):
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        assert task.read(addr, 64) == b"\x00" * 64

    def test_readonly_mapping_rejects_writes(self, kernel, task):
        addr = kernel.sys_mmap(task, PAGE_SIZE, PROT_READ)
        with pytest.raises(SegmentationFault):
            task.write(addr, b"x")

    def test_munmap_makes_memory_unreachable(self, kernel, task):
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        kernel.sys_munmap(task, addr, PAGE_SIZE)
        with pytest.raises(SegmentationFault):
            task.read(addr, 1)

    def test_syscall_requires_running_task(self, kernel, process):
        parked = process.spawn_task()
        with pytest.raises(RuntimeError):
            kernel.sys_mmap(parked, PAGE_SIZE, RW)


class TestMprotectSyscall:
    def test_revoking_write_faults_writers(self, kernel, task):
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        task.write(addr, b"before")
        kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_READ)
        assert task.read(addr, 6) == b"before"
        with pytest.raises(SegmentationFault):
            task.write(addr, b"after")

    def test_mprotect_flushes_stale_tlb_permissions(self, kernel, task):
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        task.write(addr, b"warm the TLB")
        kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_NONE)
        with pytest.raises(SegmentationFault):
            task.read(addr, 1)

    def test_one_page_cost_matches_table1(self, kernel, task, measure):
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        elapsed = measure(
            lambda: kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_READ),
            task=task)
        assert elapsed == pytest.approx(1094.0)

    def test_cost_grows_linearly_with_pages(self, kernel, task, measure):
        # 50 vs 100 pages: both sizes are above the precise-shootdown
        # cutoff (full-flush regime), so the marginal cost per page is
        # the PTE rewrite alone.
        addr = kernel.sys_mmap(task, 100 * PAGE_SIZE, RW)
        fifty = measure(
            lambda: kernel.sys_mprotect(task, addr, 50 * PAGE_SIZE,
                                        PROT_READ),
            task=task)
        hundred = measure(
            lambda: kernel.sys_mprotect(task, addr, 100 * PAGE_SIZE, RW),
            task=task)
        slope = (hundred - fifty) / 50
        assert slope == pytest.approx(kernel.costs.pte_update, rel=0.2)

    def test_remote_running_threads_cost_shootdown_ipis(
            self, kernel, process, task, measure):
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        solo = measure(
            lambda: kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_READ),
            task=task)
        for _ in range(3):
            kernel.scheduler.schedule(process.spawn_task(), charge=False)
        with_siblings = measure(
            lambda: kernel.sys_mprotect(task, addr, PAGE_SIZE, RW),
            task=task)
        # One-page range: the precise shootdown charges each remote core
        # an IPI plus a single INVLPG rather than a full flush.
        expected_extra = 3 * (kernel.costs.tlb_shootdown_ipi
                              + kernel.costs.tlb_flush_page)
        assert with_siblings - solo == pytest.approx(expected_extra)

    def test_shootdown_reaches_sibling_cores(self, kernel, process, task):
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        sibling.read(addr, 1)  # warm sibling's TLB
        sibling_tlb = kernel.machine.core(sibling.core_id).tlb
        assert len(sibling_tlb) > 0
        kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_NONE)
        assert len(sibling_tlb) == 0
        with pytest.raises(SegmentationFault):
            sibling.read(addr, 1)


class TestExecuteOnly:
    """Linux's mprotect(PROT_EXEC) execute-only memory (§2.2, §3.3)."""

    def test_caller_cannot_read_execute_only_memory(self, kernel, task):
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        task.write(addr, b"\x90\x90\xc3")  # code bytes
        kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_EXEC)
        with pytest.raises(PkeyFault):
            task.read(addr, 1)

    def test_execute_only_memory_remains_fetchable(self, kernel, task):
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        task.write(addr, b"\x90\x90\xc3")
        kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_EXEC)
        assert task.fetch(addr, 3) == b"\x90\x90\xc3"

    def test_uses_a_dedicated_kernel_pkey(self, kernel, process, task):
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_EXEC)
        xo_key = process.pkeys.execute_only_pkey
        assert xo_key is not None
        from repro.consts import page_number
        assert process.page_table.lookup(page_number(addr)).pkey == xo_key

    def test_sibling_thread_with_permissive_pkru_can_still_read(
            self, kernel, process, task):
        """§3.3's semantic gap: the kernel only updates the *calling*
        thread's PKRU, so a sibling that holds (or later sets) rights for
        the execute-only key can read "execute-only" memory."""
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)
        from repro.hw.pkru import PKRU
        sibling.wrpkru(PKRU.allow_all().value)  # legitimate userspace op

        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        task.write(addr, b"secret code")
        kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_EXEC)

        with pytest.raises(PkeyFault):
            task.read(addr, 11)                      # caller is blocked
        assert sibling.read(addr, 11) == b"secret code"  # sibling is not
