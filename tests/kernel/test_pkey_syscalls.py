"""pkey syscalls: allocation bitmap, faithful use-after-free, costs."""

import pytest

from repro.consts import (
    NUM_PKEYS,
    PAGE_SIZE,
    PKEY_DISABLE_ACCESS,
    PROT_READ,
    PROT_WRITE,
    page_number,
)
from repro.errors import InvalidArgument, NoSpace
from repro.kernel.pkey import PkeyAllocator

RW = PROT_READ | PROT_WRITE


class TestPkeyAllocator:
    def test_key_zero_reserved(self):
        allocator = PkeyAllocator()
        assert allocator.is_allocated(0)
        with pytest.raises(InvalidArgument):
            allocator.free(0)

    def test_allocates_fifteen_keys(self):
        allocator = PkeyAllocator()
        keys = [allocator.alloc() for _ in range(NUM_PKEYS - 1)]
        assert keys == list(range(1, 16))
        with pytest.raises(NoSpace):
            allocator.alloc()

    def test_free_makes_key_reallocatable(self):
        allocator = PkeyAllocator()
        key = allocator.alloc()
        allocator.free(key)
        assert allocator.alloc() == key

    def test_double_free_rejected(self):
        allocator = PkeyAllocator()
        key = allocator.alloc()
        allocator.free(key)
        with pytest.raises(InvalidArgument):
            allocator.free(key)

    def test_invalid_flags_and_rights(self):
        allocator = PkeyAllocator()
        with pytest.raises(InvalidArgument):
            allocator.alloc(flags=1)
        with pytest.raises(InvalidArgument):
            allocator.alloc(init_rights=0x8)

    def test_execute_only_reservation_is_stable(self):
        allocator = PkeyAllocator()
        key = allocator.reserve_execute_only()
        assert allocator.reserve_execute_only() == key
        with pytest.raises(PermissionError):
            allocator.free(key)


class TestPkeySyscalls:
    def test_alloc_installs_initial_rights(self, kernel, process, task):
        key = kernel.sys_pkey_alloc(task, 0, PKEY_DISABLE_ACCESS)
        assert not task.pkru.can_read(key)

    def test_alloc_costs_match_table1(self, kernel, task, measure):
        elapsed = measure(lambda: kernel.sys_pkey_alloc(task), task=task)
        assert elapsed == pytest.approx(186.3)

    def test_free_costs_match_table1(self, kernel, task, measure):
        key = kernel.sys_pkey_alloc(task)
        elapsed = measure(lambda: kernel.sys_pkey_free(task, key),
                          task=task)
        assert elapsed == pytest.approx(137.2)

    def test_pkey_mprotect_requires_allocated_key(self, kernel, task):
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        with pytest.raises(InvalidArgument):
            kernel.sys_pkey_mprotect(task, addr, PAGE_SIZE, RW, 9)

    def test_pkey_mprotect_rejects_key_zero(self, kernel, task):
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        with pytest.raises(InvalidArgument):
            kernel.sys_pkey_mprotect(task, addr, PAGE_SIZE, RW, 0)

    def test_pkey_mprotect_tags_ptes(self, kernel, process, task):
        key = kernel.sys_pkey_alloc(task)
        addr = kernel.sys_mmap(task, 2 * PAGE_SIZE, RW)
        kernel.sys_pkey_mprotect(task, addr, 2 * PAGE_SIZE, RW, key)
        for i in range(2):
            assert process.page_table.lookup(
                page_number(addr) + i).pkey == key

    def test_use_after_free_leaves_stale_ptes(self, kernel, process, task):
        """§3.1: pkey_free does not scrub PTEs; reallocation silently
        adopts the stale pages."""
        key = kernel.sys_pkey_alloc(task)
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        kernel.sys_pkey_mprotect(task, addr, PAGE_SIZE, RW, key)
        kernel.sys_pkey_free(task, key)
        # The PTE still carries the freed key.
        assert process.page_table.lookup(page_number(addr)).pkey == key
        # And the very next alloc hands the same key back.
        assert kernel.sys_pkey_alloc(task) == key
        assert process.page_table.pages_with_pkey(key) == [page_number(addr)]
