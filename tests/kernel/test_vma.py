"""VMA tree: insert/find/split/merge mechanics."""

import pytest

from repro.consts import PAGE_SIZE, PROT_READ, PROT_WRITE
from repro.kernel.vma import VMA, VmaTree

P = PAGE_SIZE
RW = PROT_READ | PROT_WRITE


def vma(start_pages, end_pages, prot=RW, pkey=0):
    return VMA(start_pages * P, end_pages * P, prot, pkey)


class TestVma:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            VMA(1, P, RW)
        with pytest.raises(ValueError):
            VMA(0, P + 1, RW)

    def test_empty_vma_rejected(self):
        with pytest.raises(ValueError):
            VMA(P, P, RW)

    def test_contains_and_overlaps(self):
        v = vma(1, 3)
        assert v.contains(P)
        assert v.contains(3 * P - 1)
        assert not v.contains(3 * P)
        assert v.overlaps(0, 2 * P)
        assert not v.overlaps(3 * P, 4 * P)

    def test_num_pages(self):
        assert vma(2, 7).num_pages == 5

    def test_merge_requires_identical_attributes(self):
        assert vma(0, 1).can_merge_with(vma(1, 2))
        assert not vma(0, 1).can_merge_with(vma(2, 3))       # gap
        assert not vma(0, 1).can_merge_with(vma(1, 2, PROT_READ))
        assert not vma(0, 1).can_merge_with(vma(1, 2, RW, pkey=5))


class TestVmaTree:
    def test_insert_and_find(self):
        tree = VmaTree()
        v = vma(1, 3)
        tree.insert(v)
        assert tree.find(P) is v
        assert tree.find(2 * P) is v
        assert tree.find(0) is None
        assert tree.find(3 * P) is None

    def test_overlapping_insert_rejected(self):
        tree = VmaTree()
        tree.insert(vma(1, 3))
        with pytest.raises(ValueError):
            tree.insert(vma(2, 4))
        with pytest.raises(ValueError):
            tree.insert(vma(0, 2))

    def test_find_range(self):
        tree = VmaTree()
        a, b, c = vma(0, 2), vma(4, 6), vma(8, 10)
        for v in (a, b, c):
            tree.insert(v)
        assert tree.find_range(P, 5 * P) == [a, b]
        assert tree.find_range(6 * P, 8 * P) == []
        assert tree.find_range(0, 10 * P) == [a, b, c]

    def test_split(self):
        tree = VmaTree()
        tree.insert(vma(0, 4))
        original = tree.find(0)
        left, right = tree.split(original, 2 * P)
        assert (left.start, left.end) == (0, 2 * P)
        assert (right.start, right.end) == (2 * P, 4 * P)
        assert len(tree) == 2

    def test_split_point_must_be_interior(self):
        tree = VmaTree()
        v = vma(0, 2)
        tree.insert(v)
        with pytest.raises(ValueError):
            tree.split(v, 0)
        with pytest.raises(ValueError):
            tree.split(v, 2 * P)

    def test_merge_around_joins_identical_neighbors(self):
        tree = VmaTree()
        tree.insert(vma(0, 2))
        tree.insert(vma(2, 4))
        merges = tree.merge_around(0, 4 * P)
        assert merges == 1
        assert len(tree) == 1
        assert tree.find(0).end == 4 * P

    def test_merge_skips_different_attributes(self):
        tree = VmaTree()
        tree.insert(vma(0, 2))
        tree.insert(vma(2, 4, PROT_READ))
        assert tree.merge_around(0, 4 * P) == 0
        assert len(tree) == 2

    def test_merge_chains_across_three(self):
        tree = VmaTree()
        for i in range(3):
            tree.insert(vma(i, i + 1))
        assert tree.merge_around(0, 3 * P) == 2
        assert len(tree) == 1

    def test_gap_after_first_fit(self):
        tree = VmaTree()
        tree.insert(vma(0, 2))
        tree.insert(vma(3, 5))
        assert tree.gap_after(0, P) == 2 * P          # fits in the hole
        assert tree.gap_after(0, 2 * P) == 5 * P      # skips to the end

    def test_remove_foreign_vma_rejected(self):
        tree = VmaTree()
        tree.insert(vma(0, 1))
        with pytest.raises(ValueError):
            tree.remove(vma(0, 1))  # equal but not identical object
