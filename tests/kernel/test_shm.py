"""Shared memory objects: cross-process visibility, per-mapping prot."""

import pytest

from repro.consts import PAGE_SIZE, PROT_EXEC, PROT_READ, PROT_WRITE
from repro.errors import InvalidArgument, SegmentationFault
from repro.kernel.shm import SharedObject

RW = PROT_READ | PROT_WRITE
RX = PROT_READ | PROT_EXEC


@pytest.fixture
def two_processes(kernel):
    a = kernel.create_process()
    b = kernel.create_process()
    return a.main_task, b.main_task


class TestSharedObject:
    def test_size_rounds_to_pages(self):
        assert SharedObject("x", 100).size == PAGE_SIZE
        assert SharedObject("x", 2 * PAGE_SIZE).num_pages == 2

    def test_invalid_size_rejected(self):
        with pytest.raises(InvalidArgument):
            SharedObject("x", 0)

    def test_frames_are_stable_per_page(self, machine):
        shared = SharedObject("x", 4 * PAGE_SIZE)
        frame = shared.frame_for(2, machine)
        assert shared.frame_for(2, machine) is frame
        assert shared.frame_for(3, machine) is not frame
        assert shared.populated_pages() == 2

    def test_out_of_range_page_rejected(self, machine):
        shared = SharedObject("x", PAGE_SIZE)
        with pytest.raises(InvalidArgument):
            shared.frame_for(1, machine)


class TestCrossProcessSharing:
    def test_writes_are_mutually_visible(self, kernel, two_processes):
        writer, reader = two_processes
        shared = kernel.create_shared_object("buf", 2 * PAGE_SIZE)
        w_base = kernel.sys_mmap_shared(writer, shared, RW)
        r_base = kernel.sys_mmap_shared(reader, shared, PROT_READ)
        writer.write(w_base + 100, b"hello across processes")
        assert reader.read(r_base + 100, 22) == \
            b"hello across processes"

    def test_protection_is_per_mapping(self, kernel, two_processes):
        writer, reader = two_processes
        shared = kernel.create_shared_object("buf", PAGE_SIZE)
        w_base = kernel.sys_mmap_shared(writer, shared, RW)
        r_base = kernel.sys_mmap_shared(reader, shared, PROT_READ)
        writer.write(w_base, b"data")
        with pytest.raises(SegmentationFault):
            reader.write(r_base, b"nope")

    def test_sdcg_shape_rw_here_rx_there(self, kernel, two_processes):
        """The two-process W^X split: emitter writes, engine executes;
        neither can do the other."""
        emitter, engine = two_processes
        shared = kernel.create_shared_object("code", PAGE_SIZE)
        e_base = kernel.sys_mmap_shared(emitter, shared, RW)
        x_base = kernel.sys_mmap_shared(engine, shared, RX)
        emitter.write(e_base, b"\x90\xc3")
        assert engine.fetch(x_base, 2) == b"\x90\xc3"
        with pytest.raises(SegmentationFault):
            engine.write(x_base, b"\xcc")       # engine can't write
        with pytest.raises(SegmentationFault):
            emitter.fetch(e_base, 1)            # emitter can't exec

    def test_munmap_does_not_destroy_shared_frames(self, kernel,
                                                   two_processes):
        writer, reader = two_processes
        shared = kernel.create_shared_object("buf", PAGE_SIZE)
        w_base = kernel.sys_mmap_shared(writer, shared, RW)
        r_base = kernel.sys_mmap_shared(reader, shared, PROT_READ)
        writer.write(w_base, b"persists")
        kernel.sys_munmap(writer, w_base, PAGE_SIZE)
        assert reader.read(r_base, 8) == b"persists"

    def test_same_process_can_dual_map(self, kernel, process, task):
        """The libmpk metadata pattern: one object, two views in one
        address space."""
        shared = kernel.create_shared_object("meta", PAGE_SIZE)
        rw_view = kernel.sys_mmap_shared(task, shared, RW)
        ro_view = kernel.sys_mmap_shared(task, shared, PROT_READ)
        task.write(rw_view, b"via the writable view")
        assert task.read(ro_view, 21) == b"via the writable view"
        with pytest.raises(SegmentationFault):
            task.write(ro_view, b"x")
