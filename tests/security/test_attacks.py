"""The §6.1 security evaluation, as executable proofs.

Every attack is asserted in both directions: it *succeeds* against the
insecure baseline (proving the harness is a real attack) and is
*killed* by the hardened configuration (proving the defence).
"""

import pytest

from repro.consts import PAGE_SIZE, PROT_READ, PROT_WRITE
from repro.errors import PkeyFault
from repro import Kernel, Libmpk
from repro.apps.jit import ENGINES, JsEngine, KeyPerProcessWx, MprotectWx
from repro.apps.sslserver import HttpServer, SslLibrary
from repro.security import (
    arbitrary_read_sweep,
    heartbleed_attack,
    jit_race_attack,
    pkey_corruption_attack,
    pkey_use_after_free_attack,
)

RW = PROT_READ | PROT_WRITE


def build_server(mode):
    kernel = Kernel()
    process = kernel.create_process()
    task = process.main_task
    lib = None
    if mode == "libmpk":
        lib = Libmpk(process)
        lib.mpk_init(task)
    # Map the receive buffer first so the SSL key heap lands directly
    # above it — the adjacency the over-read needs.
    recv = kernel.sys_mmap(task, PAGE_SIZE, RW)
    ssl = SslLibrary(kernel, process, task, mode=mode, lib=lib)
    server = HttpServer(kernel, process, task, ssl,
                        recv_buffer_addr=recv)
    return server, task


class TestHeartbleed:
    def test_leaks_private_key_from_stock_openssl(self):
        server, task = build_server("insecure")
        result = heartbleed_attack(server, task)
        assert result.succeeded, result.detail
        assert result.leaked

    def test_killed_by_libmpk_isolation(self):
        """'OpenSSL hardened by libmpk crashes with invalid memory
        access' — specifically a pkey fault at the group boundary."""
        server, task = build_server("libmpk")
        result = heartbleed_attack(server, task)
        assert not result.succeeded
        assert isinstance(result.fault, PkeyFault)

    def test_normal_heartbeats_still_work_when_hardened(self):
        server, task = build_server("libmpk")
        response = server.handle_heartbeat(task, b"ping", 4)
        assert response == b"ping"


class TestArbitraryReadSweep:
    def test_finds_decoy_in_unprotected_heap(self, kernel, process,
                                             task):
        region = kernel.sys_mmap(task, 4 * PAGE_SIZE, RW)
        task.write(region + 2 * PAGE_SIZE + 100, b"DECOY-PRIVATE-KEY")
        result = arbitrary_read_sweep(task, region, 4 * PAGE_SIZE,
                                      b"DECOY-PRIVATE-KEY")
        assert result.succeeded

    def test_killed_at_group_boundary(self, lib, kernel, process, task):
        region = kernel.sys_mmap(task, PAGE_SIZE, RW)
        secret = lib.mpk_mmap(task, 77, PAGE_SIZE, RW, addr=region
                              + PAGE_SIZE)
        with lib.domain(task, 77, RW):
            task.write(secret + 100, b"DECOY-PRIVATE-KEY")
        result = arbitrary_read_sweep(task, region, 2 * PAGE_SIZE,
                                      b"DECOY-PRIVATE-KEY")
        assert not result.succeeded
        assert isinstance(result.fault, PkeyFault)
        assert b"DECOY-PRIVATE-KEY" not in result.leaked


class TestJitRace:
    def _engine(self, backend_name):
        kernel = Kernel()
        process = kernel.create_process()
        task = process.main_task
        if backend_name == "mprotect":
            backend = MprotectWx(kernel)
        else:
            lib = Libmpk(process)
            lib.mpk_init(task)
            backend = KeyPerProcessWx(kernel, lib)
        engine = JsEngine(kernel, process, ENGINES["chakracore"], backend)
        attacker = process.spawn_task()
        kernel.scheduler.schedule(attacker, charge=False)
        return engine, attacker

    def test_race_succeeds_against_mprotect_wx(self):
        """SDCG's attack: during the writable window, a compromised
        sibling plants shellcode in the code cache."""
        engine, attacker = self._engine("mprotect")
        result = jit_race_attack(engine, attacker)
        assert result.succeeded, result.detail

    def test_race_killed_by_libmpk_wx(self):
        """'Both SpiderMonkey and ChakraCore crash with a segmentation
        fault at the end' — the attacker thread never has write rights."""
        engine, attacker = self._engine("libmpk")
        result = jit_race_attack(engine, attacker)
        assert not result.succeeded
        assert isinstance(result.fault, PkeyFault)


class TestPkeyCorruption:
    def test_succeeds_against_raw_mpk(self, kernel, process, task):
        """§3.1: with raw MPK the app keeps its pkey in writable
        memory; corrupting it redirects a legitimate pkey_set."""
        victim_key = kernel.sys_pkey_alloc(task)
        victim = kernel.sys_mmap(task, PAGE_SIZE, RW)
        kernel.sys_pkey_mprotect(task, victim, PAGE_SIZE, RW, victim_key)
        task.write(victim, b"victim secret bytes!")
        task.pkey_set(victim_key, 0x1)  # lock the victim region

        app_key = kernel.sys_pkey_alloc(task)
        key_var = kernel.sys_mmap(task, PAGE_SIZE, RW)
        task.write(key_var, bytes([app_key]))

        result = pkey_corruption_attack(kernel, task, key_var, victim)
        assert result.succeeded, result.detail
        assert result.leaked.startswith(b"victim secret")

    def test_blocked_by_libmpk_hardcoded_vkeys(self, kernel, process,
                                               task):
        """libmpk never lets key material sit in writable memory: the
        vkey is a hardcoded constant and the vkey→pkey map lives in the
        read-only metadata page.  A corrupted vkey argument is rejected
        at the call site."""
        from repro.errors import MpkMetadataTampering

        lib = Libmpk(process)
        lib.mpk_init(task, static_vkeys=[100, 200])
        victim = lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        with lib.domain(task, 100, RW):
            task.write(victim, b"victim secret bytes!")
        corrupted_vkey = 0x41
        with pytest.raises(MpkMetadataTampering):
            lib.mpk_begin(task, corrupted_vkey, RW)
        # And the metadata page itself cannot be overwritten.
        record = lib.metadata.record_user_addr(100)
        from repro.errors import SegmentationFault
        with pytest.raises(SegmentationFault):
            task.write(record, b"\xff" * 8)


class TestPkeyUseAfterFree:
    def test_succeeds_against_raw_mpk(self, kernel, process, task):
        """§3.1: pkey_free + pkey_alloc silently joins stale pages to
        the new key's group."""
        key = kernel.sys_pkey_alloc(task)
        secret = kernel.sys_mmap(task, PAGE_SIZE, RW)
        kernel.sys_pkey_mprotect(task, secret, PAGE_SIZE, RW, key)
        task.write(secret, b"old tenant's secret!")
        task.pkey_set(key, 0x1)     # seal it
        kernel.sys_pkey_free(task, key)

        result = pkey_use_after_free_attack(kernel, task, secret, key)
        assert result.succeeded, result.detail
        assert result.leaked.startswith(b"old tenant")

    def test_impossible_under_libmpk(self, lib, kernel, process, task):
        """libmpk owns every hardware key and scrubs group state on
        munmap, so key recycling never exposes stale pages."""
        secret = lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        with lib.domain(task, 100, RW):
            task.write(secret, b"old tenant's secret!")
        lib.mpk_munmap(task, 100)
        # The address space no longer maps the page at all; any reuse
        # of the hardware key cannot resurrect it.
        assert task.try_read(secret, 8) is None
        fresh = lib.mpk_mmap(task, 200, PAGE_SIZE, RW)
        with lib.domain(task, 200, RW):
            assert task.read(fresh, 20) == b"\x00" * 20
