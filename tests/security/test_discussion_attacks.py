"""§7 discussion attacks: Meltdown against MPK, WRPKRU hijacking."""

import pytest

from repro.consts import PAGE_SIZE, PROT_NONE, PROT_READ, PROT_WRITE
from repro.errors import SandboxViolation
from repro import Kernel, Libmpk, Machine
from repro.hw.pkru import KEY_RIGHTS_ALL
from repro.security import (
    install_wrpkru_sandbox,
    meltdown_attack,
    remove_wrpkru_sandbox,
    sandbox_process,
    wrpkru_hijack_attack,
)

RW = PROT_READ | PROT_WRITE


def _protected_secret(kernel, process, task, lib):
    """A populated, PKRU-sealed page containing a secret."""
    addr = lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
    with lib.domain(task, 100, RW):
        task.write(addr, b"TOP-SECRET-BYTES")
    return addr


class TestMeltdown:
    def _setup(self, mitigated: bool):
        kernel = Kernel(Machine(num_cores=4,
                                meltdown_mitigated=mitigated))
        process = kernel.create_process()
        task = process.main_task
        lib = Libmpk(process)
        lib.mpk_init(task)
        addr = _protected_secret(kernel, process, task, lib)
        return kernel, task, addr

    def test_vulnerable_silicon_leaks_pkey_protected_data(self):
        """§7: MPK does not stop the rogue data cache load."""
        kernel, task, addr = self._setup(mitigated=False)
        assert task.try_read(addr, 16) is None  # architecturally sealed
        result = meltdown_attack(task, addr)
        assert result.succeeded
        assert result.leaked == b"TOP-SECRET-BYTES"

    def test_mitigated_silicon_does_not_leak(self):
        kernel, task, addr = self._setup(mitigated=True)
        result = meltdown_attack(task, addr)
        assert not result.succeeded

    def test_absent_pages_cannot_leak(self):
        """Demand paging as incidental defence: an untouched page has
        no resident data for the transient load to return."""
        kernel = Kernel(Machine(num_cores=4))
        process = kernel.create_process()
        task = process.main_task
        lib = Libmpk(process)
        lib.mpk_init(task)
        addr = lib.mpk_mmap(task, 100, PAGE_SIZE, RW)  # never written
        result = meltdown_attack(task, addr)
        assert not result.succeeded

    def test_page_bit_denial_blocks_the_transient_load(self):
        kernel = Kernel(Machine(num_cores=4))
        process = kernel.create_process()
        task = process.main_task
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        task.write(addr, b"data")
        kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_NONE)
        result = meltdown_attack(task, addr)
        assert not result.succeeded


class TestWrpkruHijack:
    def _setup(self):
        kernel = Kernel()
        process = kernel.create_process()
        task = process.main_task
        lib = Libmpk(process)
        lib.mpk_init(task)
        addr = _protected_secret(kernel, process, task, lib)
        return kernel, process, task, lib, addr

    def test_hijack_succeeds_without_sandbox(self):
        """§7: once control flow is hijacked, a WRPKRU gadget defeats
        raw MPK protection entirely."""
        kernel, process, task, lib, addr = self._setup()
        result = wrpkru_hijack_attack(task, addr)
        assert result.succeeded
        assert result.leaked == b"TOP-SECRET-BYTES"

    def test_call_gate_sandbox_blocks_the_gadget(self):
        kernel, process, task, lib, addr = self._setup()
        install_wrpkru_sandbox(task)
        result = wrpkru_hijack_attack(task, addr)
        assert not result.succeeded
        assert "sandbox" in result.detail

    def test_libmpk_still_works_inside_the_sandbox(self):
        """The gates exist precisely so legitimate libmpk calls keep
        functioning after the binary scan."""
        kernel, process, task, lib, addr = self._setup()
        install_wrpkru_sandbox(task)
        with lib.domain(task, 100, PROT_READ):
            assert task.read(addr, 16) == b"TOP-SECRET-BYTES"
        assert task.try_read(addr, 16) is None

    def test_direct_pkey_set_is_also_gated(self):
        kernel, process, task, lib, addr = self._setup()
        install_wrpkru_sandbox(task)
        with pytest.raises(SandboxViolation):
            task.pkey_set(lib.group(100).pkey, KEY_RIGHTS_ALL)

    def test_sandbox_is_per_task_and_removable(self):
        kernel, process, task, lib, addr = self._setup()
        sibling = process.spawn_task()
        kernel.scheduler.schedule(sibling, charge=False)
        assert sandbox_process(process) == 2
        with pytest.raises(SandboxViolation):
            sibling.wrpkru(0)
        remove_wrpkru_sandbox(sibling)
        sibling.wrpkru(0)  # allowed again
        with pytest.raises(SandboxViolation):
            task.wrpkru(0)  # main task still sandboxed
