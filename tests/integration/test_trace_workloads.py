"""Tracing on real workloads: accounting must reconcile with the clock."""

import pytest

from repro.consts import PAGE_SIZE, PROT_READ, PROT_WRITE
from repro import Libmpk
from repro.trace import attach_tracer

RW = PROT_READ | PROT_WRITE


class TestTraceAccounting:
    def test_top_level_costs_never_exceed_wall_clock(self, kernel,
                                                     process, task):
        lib = Libmpk(process)
        lib.mpk_init(task)
        tracer = attach_tracer(kernel=kernel, lib=lib)
        start = kernel.clock.now
        for i in range(10):
            addr = lib.mpk_mmap(task, 100 + i, PAGE_SIZE, RW)
            with lib.domain(task, 100 + i, RW):
                task.write(addr, b"x")
            lib.mpk_mprotect(task, 100 + i, PROT_READ)
        elapsed = kernel.clock.now - start
        tracer.detach()
        assert tracer.total_cycles() <= elapsed
        # Traced operations dominate this workload; the remainder is
        # the writes' demand-paging minor faults and MMU access costs,
        # which happen outside the API surface.
        assert tracer.total_cycles() > 0.7 * elapsed

    def test_trace_explains_where_miss_costs_go(self, kernel, process,
                                                task):
        """Drive the cache past capacity and confirm the trace shows
        the expensive mpk_mprotect calls are the evicting ones."""
        lib = Libmpk(process)
        lib.mpk_init(task)
        for i in range(20):
            lib.mpk_mmap(task, 100 + i, PAGE_SIZE, RW)
        tracer = attach_tracer(lib=lib)
        for i in range(20):
            lib.mpk_mprotect(task, 100 + i, RW)
        tracer.detach()
        costs = sorted(e.cycles for e in tracer.events
                       if e.op == "mpk_mprotect")
        # First 15 get free keys (cheap-ish); the last 5 evict (dear).
        assert costs[-1] > 10 * costs[0]

    def test_tracer_survives_workload_exceptions(self, kernel, process,
                                                 task):
        lib = Libmpk(process)
        lib.mpk_init(task)
        tracer = attach_tracer(kernel=kernel, lib=lib)
        from repro.errors import MpkUnknownVkey
        with pytest.raises(MpkUnknownVkey):
            lib.mpk_begin(task, 424242, RW)
        tracer.detach()
        # The failed call is still recorded (with whatever it cost).
        assert tracer.count("libmpk", "mpk_begin") == 1
