"""Concurrency invariants checked across *all* interleavings.

Each scenario builds a fresh machine per schedule (via ``setup``) and
asserts its isolation invariant after every step of every possible
interleaving of the thread scripts — the strongest statement the
deterministic simulator can make about the §4 semantics.
"""

import pytest

from repro.consts import PAGE_SIZE, PROT_NONE, PROT_READ, PROT_WRITE
from repro import Kernel, Libmpk, Machine
from repro.interleave import (
    InterleavingFailure,
    explore,
    run_schedule,
)

RW = PROT_READ | PROT_WRITE
G = 100


def _fresh(context):
    kernel = Kernel(Machine(num_cores=8))
    process = kernel.create_process()
    t0 = process.main_task
    t1 = process.spawn_task()
    kernel.scheduler.schedule(t1, charge=False)
    lib = Libmpk(process)
    lib.mpk_init(t0)
    addr = lib.mpk_mmap(t0, G, PAGE_SIZE, RW)
    context.data.update(kernel=kernel, lib=lib, t0=t0, t1=t1,
                        addr=addr, in_domain=set(), global_prot=None)


class TestDomainIsolationUnderAllInterleavings:
    def test_outsider_never_reads_domain_data(self):
        """Thread 0 cycles a begin/write/end window; thread 1 probes
        throughout.  In no interleaving may thread 1 read the group."""

        def owner(ctx):
            d = ctx.data
            d["lib"].mpk_begin(d["t0"], G, RW)
            yield
            d["t0"].write(d["addr"], b"secret")
            yield
            d["lib"].mpk_end(d["t0"], G)
            yield

        def prober(ctx):
            d = ctx.data
            for _ in range(3):
                assert d["t1"].try_read(d["addr"], 1) is None
                assert d["t1"].try_read(d["addr"] + 100, 1) is None
                yield

        result = explore([owner, prober], setup=_fresh)
        assert result.exhaustive
        assert result.schedules_run == 20  # C(6,3)

    def test_two_owners_with_separate_groups(self):
        """Each thread owns its own group; neither ever sees the
        other's, regardless of interleaving."""

        def setup(ctx):
            _fresh(ctx)
            d = ctx.data
            d["addr2"] = d["lib"].mpk_mmap(d["t0"], G + 1, PAGE_SIZE, RW)

        def thread0(ctx):
            d = ctx.data
            d["lib"].mpk_begin(d["t0"], G, RW)
            yield
            d["t0"].write(d["addr"], b"zero")
            assert d["t0"].try_read(d["addr2"], 1) is None
            yield
            d["lib"].mpk_end(d["t0"], G)
            yield

        def thread1(ctx):
            d = ctx.data
            d["lib"].mpk_begin(d["t1"], G + 1, RW)
            yield
            d["t1"].write(d["addr2"], b"one")
            assert d["t1"].try_read(d["addr"], 1) is None
            yield
            d["lib"].mpk_end(d["t1"], G + 1)
            yield

        result = explore([thread0, thread1], setup=setup)
        assert result.exhaustive


class TestGlobalSemanticsUnderAllInterleavings:
    def test_mprotect_semantics_hold_at_every_step(self):
        """Thread 0 toggles the group globally (rw -> none -> r);
        thread 1 probes.  After every step, thread 1's access must
        match the most recent global setting exactly."""

        def toggler(ctx):
            d = ctx.data
            d["lib"].mpk_mprotect(d["t0"], G, RW)
            d["global_prot"] = RW
            ctx.data["global_prot"] = RW
            yield
            d["lib"].mpk_mprotect(d["t0"], G, PROT_NONE)
            ctx.data["global_prot"] = PROT_NONE
            yield
            d["lib"].mpk_mprotect(d["t0"], G, PROT_READ)
            ctx.data["global_prot"] = PROT_READ
            yield

        def prober(ctx):
            for _ in range(3):
                yield

        def invariant(ctx):
            d = ctx.data
            prot = d.get("global_prot")
            readable = d["t1"].try_read(d["addr"], 1) is not None
            expected = prot is not None and bool(prot & PROT_READ)
            assert readable == expected, (
                f"global prot {prot}: outsider readable={readable}")

        result = explore([toggler, prober], setup=_fresh,
                         invariant=invariant)
        assert result.exhaustive


class TestExplorerMechanics:
    def test_failure_reports_the_schedule(self):
        def bad(ctx):
            ctx.data["x"] = 1
            yield
            raise RuntimeError("boom")
            yield  # pragma: no cover

        def other(ctx):
            yield

        with pytest.raises(InterleavingFailure) as exc_info:
            explore([bad, other], setup=lambda ctx: None)
        assert exc_info.value.schedule
        assert isinstance(exc_info.value.cause, RuntimeError)

    def test_run_schedule_replays_exactly(self):
        order = []

        def a(ctx):
            order.append("a1")
            yield
            order.append("a2")
            yield

        def b(ctx):
            order.append("b1")
            yield

        run_schedule([a, b], (0, 1, 0))
        assert order == ["a1", "b1", "a2"]

    def test_overrun_schedule_rejected(self):
        def a(ctx):
            yield

        with pytest.raises(ValueError):
            run_schedule([a], (0, 0))

    def test_large_spaces_fall_back_to_sampling(self):
        def make(n):
            def script(ctx):
                for _ in range(n):
                    yield
            return script

        result = explore([make(6), make(6)], max_schedules=50)
        assert not result.exhaustive
        assert result.schedules_run == 50
