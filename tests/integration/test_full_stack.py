"""Cross-layer integration: multi-threaded workloads over libmpk.

These tests exercise the whole stack at once — several threads, many
page groups, mixed domain/global usage, key-cache churn — and verify
the isolation invariants hold at every step.
"""

import pytest

from repro.consts import PAGE_SIZE, PROT_READ, PROT_WRITE
from repro.errors import MachineFault, MpkKeyExhaustion
from repro import Kernel, Libmpk, Machine

RW = PROT_READ | PROT_WRITE


@pytest.fixture
def stack():
    kernel = Kernel(Machine(num_cores=16))
    process = kernel.create_process()
    workers = [process.main_task]
    for _ in range(3):
        task = process.spawn_task()
        kernel.scheduler.schedule(task, charge=False)
        workers.append(task)
    lib = Libmpk(process)
    lib.mpk_init(workers[0])
    return kernel, process, workers, lib


class TestPerThreadSessions:
    """The paper's motivating server scenario: a page group per
    session, opened only by the worker handling that session."""

    def test_sessions_stay_isolated_across_workers(self, stack):
        kernel, process, workers, lib = stack
        session_addrs = {}
        for i, worker in enumerate(workers):
            vkey = 300 + i
            session_addrs[vkey] = lib.mpk_mmap(worker, vkey,
                                               2 * PAGE_SIZE, RW)
            with lib.domain(worker, vkey, RW):
                worker.write(session_addrs[vkey],
                             b"session-%d-cookie" % i)
        # No worker can read any *other* worker's session, even while
        # holding its own open.
        for i, worker in enumerate(workers):
            vkey = 300 + i
            lib.mpk_begin(worker, vkey, PROT_READ)
            try:
                for j in range(len(workers)):
                    other = 300 + j
                    if other == vkey:
                        assert worker.read(session_addrs[vkey], 9)
                    else:
                        assert worker.try_read(session_addrs[other],
                                               1) is None
            finally:
                lib.mpk_end(worker, vkey)

    def test_more_sessions_than_keys_with_four_workers(self, stack):
        kernel, process, workers, lib = stack
        addrs = {}
        for i in range(40):
            vkey = 400 + i
            worker = workers[i % len(workers)]
            addrs[vkey] = lib.mpk_mmap(worker, vkey, PAGE_SIZE, RW)
            with lib.domain(worker, vkey, RW):
                worker.write(addrs[vkey], vkey.to_bytes(2, "little"))
        # Every session's data survives the key churn and is readable
        # only inside a domain.
        for i in range(40):
            vkey = 400 + i
            worker = workers[(i + 1) % len(workers)]
            assert worker.try_read(addrs[vkey], 2) is None
            with lib.domain(worker, vkey, PROT_READ):
                assert worker.read(addrs[vkey], 2) == \
                    vkey.to_bytes(2, "little")


class TestMixedModels:
    def test_global_config_plus_private_sessions(self, stack):
        """One mpk_mprotect-managed group (shared config, mostly
        read-only) coexists with per-thread domains."""
        kernel, process, workers, lib = stack
        main = workers[0]
        config = lib.mpk_mmap(main, 500, PAGE_SIZE, RW)
        lib.mpk_mprotect(main, 500, RW)
        main.write(config, b"config-v1")
        lib.mpk_mprotect(main, 500, PROT_READ)

        secret = lib.mpk_mmap(main, 501, PAGE_SIZE, RW)
        with lib.domain(main, 501, RW):
            main.write(secret, b"main-only")

        for worker in workers:
            assert worker.read(config, 9) == b"config-v1"
            with pytest.raises(MachineFault):
                worker.write(config, b"config-v2")
            if worker is not main:
                assert worker.try_read(secret, 1) is None

        # A config update round-trip: writable for the updater thread
        # only via domain, then read-only for all again.
        with lib.domain(main, 500, RW):
            main.write(config, b"config-v2")
        # After the domain window the group needs re-publication.
        lib.mpk_mprotect(main, 500, PROT_READ)
        for worker in workers:
            assert worker.read(config, 9) == b"config-v2"

    def test_exhaustion_and_recovery_under_load(self, stack):
        kernel, process, workers, lib = stack
        main = workers[0]
        vkeys = list(range(600, 615))
        for vkey in vkeys:
            lib.mpk_mmap(main, vkey, PAGE_SIZE, RW)
            lib.mpk_begin(main, vkey, RW)   # pin all 15 keys
        lib.mpk_mmap(main, 700, PAGE_SIZE, RW)
        with pytest.raises(MpkKeyExhaustion):
            lib.mpk_begin(workers[1], 700, RW)
        # The caller handles the exception: waits for a key and retries
        # (the paper's suggested strategy).
        lib.mpk_end(main, vkeys[0])
        lib.mpk_begin(workers[1], 700, RW)
        workers[1].write(lib.group(700).base, b"recovered")
        lib.mpk_end(workers[1], 700)
        for vkey in vkeys[1:]:
            lib.mpk_end(main, vkey)


class TestClockDiscipline:
    def test_simulated_time_is_monotonic_across_the_stack(self, stack):
        kernel, process, workers, lib = stack
        samples = [kernel.clock.now]
        addr = lib.mpk_mmap(workers[0], 800, PAGE_SIZE, RW)
        samples.append(kernel.clock.now)
        with lib.domain(workers[0], 800, RW):
            workers[0].write(addr, b"x")
        samples.append(kernel.clock.now)
        lib.mpk_mprotect(workers[0], 800, PROT_READ)
        samples.append(kernel.clock.now)
        lib.mpk_munmap(workers[0], 800)
        samples.append(kernel.clock.now)
        assert samples == sorted(samples)
        assert samples[0] < samples[-1]

    def test_sibling_sync_costs_scale_with_running_threads(self, stack):
        kernel, process, workers, lib = stack
        main = workers[0]
        lib.mpk_mmap(main, 801, PAGE_SIZE, RW)
        lib.mpk_mprotect(main, 801, RW)
        start = kernel.clock.now
        lib.mpk_mprotect(main, 801, PROT_READ)
        with_siblings = kernel.clock.now - start
        for worker in workers[1:]:
            kernel.scheduler.unschedule(worker)
            process.exit_task(worker)
        start = kernel.clock.now
        lib.mpk_mprotect(main, 801, RW)
        alone = kernel.clock.now - start
        assert alone < with_siblings
