"""Failure injection: the stack must stay consistent when things break.

Covers out-of-memory at fault time, exceptions escaping domains, heap
exhaustion, metadata churn, and mid-operation application crashes.
"""

import pytest

from repro.consts import PAGE_SIZE, PROT_READ, PROT_WRITE
from repro.errors import (
    MachineFault,
    MpkError,
    MpkKeyExhaustion,
    OutOfMemory,
)
from repro import Kernel, Libmpk, Machine

RW = PROT_READ | PROT_WRITE


class TestOutOfMemory:
    def test_oom_at_fault_time_leaves_machine_usable(self):
        kernel = Kernel(Machine(num_cores=2, memory_bytes=64 * PAGE_SIZE))
        process = kernel.create_process()
        task = process.main_task
        lib = Libmpk(process)
        lib.mpk_init(task)  # consumes some frames for metadata
        big = lib.mpk_mmap(task, 100, 1000 * PAGE_SIZE, RW)  # overcommit
        with lib.domain(task, 100, RW):
            with pytest.raises(OutOfMemory):
                for page in range(1000):
                    task.write(big + page * PAGE_SIZE, b"fill")
        # The touched pages survived and stay consistent.
        with lib.domain(task, 100, PROT_READ):
            assert task.read(big, 4) == b"fill"

    def test_freeing_groups_releases_frames_for_reuse(self):
        kernel = Kernel(Machine(num_cores=2, memory_bytes=64 * PAGE_SIZE))
        process = kernel.create_process()
        task = process.main_task
        lib = Libmpk(process)
        lib.mpk_init(task)
        for round_number in range(8):
            vkey = 100 + round_number
            addr = lib.mpk_mmap(task, vkey, 16 * PAGE_SIZE, RW)
            with lib.domain(task, vkey, RW):
                for page in range(16):
                    task.write(addr + page * PAGE_SIZE, b"round")
            lib.mpk_munmap(task, vkey)
        # 8 rounds x 16 pages = 128 pages total, but never more than
        # ~16 live at once: only possible if frames get recycled.


class TestExceptionSafety:
    def test_app_crash_inside_domain_does_not_leak_access(self, kernel,
                                                          process, task):
        lib = Libmpk(process)
        lib.mpk_init(task)
        addr = lib.mpk_mmap(task, 100, PAGE_SIZE, RW)

        def buggy_handler():
            with lib.domain(task, 100, RW):
                task.write(addr, b"partial")
                raise RuntimeError("application bug")

        with pytest.raises(RuntimeError):
            buggy_handler()
        # The context manager released the domain; the group is sealed
        # and unpinned (so it can still be evicted/unmapped).
        assert task.try_read(addr, 7) is None
        assert not lib.group(100).pinned
        lib.mpk_munmap(task, 100)

    def test_fault_mid_write_is_contained(self, kernel, process, task):
        lib = Libmpk(process)
        lib.mpk_init(task)
        addr = lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        with lib.domain(task, 100, RW):
            # A write that starts in-group and runs off its end faults
            # at the boundary...
            with pytest.raises(MachineFault):
                task.write(addr + PAGE_SIZE - 4, b"x" * 64)
            # ...and the domain is still usable afterwards.
            task.write(addr, b"still ok")
            assert task.read(addr, 8) == b"still ok"

    def test_heap_exhaustion_is_clean(self, kernel, process, task):
        lib = Libmpk(process)
        lib.mpk_init(task)
        lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        first = lib.mpk_malloc(task, 100, 3000)
        with pytest.raises(MpkError):
            lib.mpk_malloc(task, 100, 3000)
        # The failed allocation did not corrupt the heap.
        lib.mpk_free(task, 100, first)
        assert lib.heap(100).free_bytes() == PAGE_SIZE


class TestChurn:
    def test_group_create_destroy_churn(self, kernel, process, task):
        """Hundreds of create/use/destroy cycles: no metadata leaks,
        no key leaks, the cache ends empty."""
        lib = Libmpk(process)
        lib.mpk_init(task)
        for i in range(300):
            vkey = 1000 + (i % 25)
            addr = lib.mpk_mmap(task, vkey, PAGE_SIZE, RW)
            with lib.domain(task, vkey, RW):
                task.write(addr, i.to_bytes(2, "little"))
            lib.mpk_munmap(task, vkey)
        assert lib.groups() == {}
        assert lib.cache.in_use == 0
        assert lib.metadata.record_count() == 0

    def test_interleaved_pin_unpin_churn(self, kernel, process, task):
        lib = Libmpk(process)
        lib.mpk_init(task)
        vkeys = list(range(2000, 2020))
        for vkey in vkeys:
            lib.mpk_mmap(task, vkey, PAGE_SIZE, RW)
        open_windows = []
        for step in range(200):
            vkey = vkeys[step % len(vkeys)]
            group = lib.group(vkey)
            if task.tid in group.pinned_by:
                lib.mpk_end(task, vkey)
                open_windows.remove(vkey)
            else:
                try:
                    lib.mpk_begin(task, vkey, RW)
                    open_windows.append(vkey)
                except MpkKeyExhaustion:
                    victim = open_windows.pop(0)
                    lib.mpk_end(task, victim)
        for vkey in list(open_windows):
            lib.mpk_end(task, vkey)
        assert not any(lib.group(v).pinned for v in vkeys)
