"""All three case studies co-resident on one simulated machine.

The paper's applications are separate processes of one host; this test
runs them together — each with its own process, libmpk instance, and
key space — and verifies they neither interfere nor share fate.
"""

import pytest

from repro.consts import PAGE_SIZE, PROT_READ, PROT_WRITE
from repro import Kernel, Libmpk, Machine
from repro.apps.jit import ENGINES, JsEngine, KeyPerProcessWx
from repro.apps.jit.minijs import MiniJsRuntime
from repro.apps.kvstore import Memcached
from repro.apps.sslserver import ApacheBench, HttpServer, SslLibrary
from repro.apps.kvstore.slab import SLAB_BYTES
from repro.security import heartbleed_attack

RW = PROT_READ | PROT_WRITE


@pytest.fixture
def deployment():
    kernel = Kernel(Machine(num_cores=24))

    # -- the HTTPS server ------------------------------------------------
    web_proc = kernel.create_process()
    web_task = web_proc.main_task
    web_lib = Libmpk(web_proc)
    web_lib.mpk_init(web_task)
    recv = kernel.sys_mmap(web_task, PAGE_SIZE, RW)
    ssl = SslLibrary(kernel, web_proc, web_task, mode="libmpk",
                     lib=web_lib)
    server = HttpServer(kernel, web_proc, web_task, ssl,
                        recv_buffer_addr=recv)

    # -- the JS engine -----------------------------------------------------
    js_proc = kernel.create_process()
    js_task = js_proc.main_task
    js_lib = Libmpk(js_proc)
    js_lib.mpk_init(js_task)
    engine = JsEngine(kernel, js_proc, ENGINES["chakracore"],
                      KeyPerProcessWx(kernel, js_lib))
    runtime = MiniJsRuntime(engine, hot_threshold=2)

    # -- the key-value store ----------------------------------------------
    kv_proc = kernel.create_process()
    kv_task = kv_proc.main_task
    kv_lib = Libmpk(kv_proc)
    kv_lib.mpk_init(kv_task)
    store = Memcached(kernel, kv_proc, kv_task, mode="mpk_begin",
                      lib=kv_lib, slab_bytes=4 * SLAB_BYTES,
                      hash_buckets=1 << 10)

    return (kernel, (server, web_task), (runtime, js_task),
            (store, kv_task))


class TestCoResidency:
    def test_interleaved_workloads_all_work(self, deployment):
        kernel, (server, web_task), (runtime, js_task), \
            (store, kv_task) = deployment
        for round_number in range(5):
            server.handle_request(web_task, response_size=2048)
            value = runtime.evaluate("hot", "x*x+3",
                                     {"x": round_number})
            assert value == round_number ** 2 + 3
            store.set(kv_task, b"round-%d" % round_number,
                      b"v" * 64)
        assert server.requests_served == 5
        assert runtime.is_compiled("hot")
        assert store.item_count == 5
        for round_number in range(5):
            assert store.get(kv_task, b"round-%d" % round_number) == \
                b"v" * 64

    def test_each_process_has_all_fifteen_keys(self, deployment):
        kernel, (server, web_task), (runtime, js_task), \
            (store, kv_task) = deployment
        # pkey spaces are per-process: every libmpk got all 15.
        for lib in (server.ssl.lib, runtime.vm.engine.backend.lib,
                    store.lib):
            assert lib.cache.capacity == 15

    def test_cross_process_isolation_is_absolute(self, deployment):
        kernel, (server, web_task), (runtime, js_task), \
            (store, kv_task) = deployment
        sentinel = b"KV-SENTINEL-VALUE"
        store.set(kv_task, b"secret", sentinel)
        # Sweep the kv store's slab address range *from the other
        # processes*: the same numeric addresses resolve (or fault) in
        # their own address spaces — the sentinel must never appear.
        for outsider in (web_task, js_task):
            leaked = b""
            for offset in range(0, 64 * PAGE_SIZE, PAGE_SIZE):
                chunk = outsider.try_read(store._slab_base + offset,
                                          PAGE_SIZE)
                if chunk:
                    leaked += chunk
            assert sentinel not in leaked
        # And the owner can still get at it through its domain.
        assert store.get(kv_task, b"secret") == sentinel

    def test_attack_on_one_app_leaves_others_standing(self, deployment):
        kernel, (server, web_task), (runtime, js_task), \
            (store, kv_task) = deployment
        result = heartbleed_attack(server, web_task)
        assert not result.succeeded  # hardened build
        # The fault was contained to that request; everything keeps
        # serving.
        server.handle_request(web_task, response_size=128)
        assert runtime.evaluate("f", "2+2") == 4
        store.set(kv_task, b"after", b"attack")
        assert store.get(kv_task, b"after") == b"attack"

    def test_global_clock_totals_are_coherent(self, deployment):
        kernel, (server, web_task), (runtime, js_task), \
            (store, kv_task) = deployment
        before = kernel.clock.now
        ApacheBench(server).run(web_task, requests=10,
                                response_size=1024)
        store.get(kv_task, b"missing")
        runtime.evaluate("g", "1+1")
        assert kernel.clock.now > before
