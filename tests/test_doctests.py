"""The executable examples embedded in docstrings must stay true."""

import doctest

import repro
import repro.hw.cycles


def test_package_quickstart_doctest():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted >= 5
    assert results.failed == 0


def test_cycles_doctests():
    results = doctest.testmod(repro.hw.cycles, verbose=False)
    assert results.attempted >= 1
    assert results.failed == 0
