"""The instrumentation spine: sinks, aggregation, spans, conservation."""

import pytest

from repro.bench import make_testbed
from repro.consts import PAGE_SIZE, PROT_READ, PROT_WRITE
from repro.hw.cycles import Clock
from repro.obs import (ChargeRecord, Observability, RingLog,
                       SiteAggregator)

RW = PROT_READ | PROT_WRITE


class TestSinkRegistration:
    def test_sinks_receive_charges(self):
        clock = Clock()
        agg = SiteAggregator()
        clock.add_sink(agg)
        clock.charge(10.0, site="hw.test.a")
        assert agg.cycles["hw.test.a"] == pytest.approx(10.0)

    def test_duplicate_registration_rejected(self):
        clock = Clock()
        agg = SiteAggregator()
        clock.add_sink(agg)
        with pytest.raises(ValueError):
            clock.add_sink(agg)

    def test_unregistered_sink_stops_receiving(self):
        clock = Clock()
        agg = SiteAggregator()
        clock.add_sink(agg)
        clock.charge(10.0, site="hw.test.a")
        clock.remove_sink(agg)
        clock.charge(10.0, site="hw.test.a")
        assert agg.cycles["hw.test.a"] == pytest.approx(10.0)
        clock.remove_sink(agg)  # removing twice is a no-op

    def test_multiple_sinks_see_the_same_stream(self):
        clock = Clock()
        agg = SiteAggregator()
        log = RingLog(capacity=8)
        clock.add_sink(agg)
        clock.add_sink(log)
        clock.charge(3.0, site="hw.test.a")
        assert agg.total() == pytest.approx(3.0)
        assert len(log) == 1


class TestSiteAggregator:
    def test_per_site_totals_and_counts(self):
        agg = SiteAggregator()
        for cycles in (2.0, 3.0):
            agg.on_charge("kernel.mprotect.base", cycles, 0.0, 0)
        agg.on_charge("hw.tlb.flush_full", 10.0, 0.0, 0)
        assert agg.cycles["kernel.mprotect.base"] == pytest.approx(5.0)
        assert agg.counts["kernel.mprotect.base"] == 2
        assert agg.total() == pytest.approx(15.0)
        assert agg.sites() == ["hw.tlb.flush_full",
                               "kernel.mprotect.base"]

    def test_breakdown_groups_by_prefix_depth(self):
        agg = SiteAggregator()
        agg.on_charge("kernel.mprotect.base", 1.0, 0.0, 0)
        agg.on_charge("kernel.mprotect.pte_update", 2.0, 0.0, 0)
        agg.on_charge("kernel.mmap.body", 4.0, 0.0, 0)
        agg.on_charge("hw.tlb.flush_full", 8.0, 0.0, 0)
        assert agg.breakdown(depth=1) == {
            "kernel": pytest.approx(7.0), "hw": pytest.approx(8.0)}
        assert agg.breakdown(depth=2)["kernel.mprotect"] == \
            pytest.approx(3.0)
        # rows are ordered most expensive first
        assert agg.rows(depth=1)[0][0] == "hw"

    def test_histogram_buckets_by_magnitude(self):
        agg = SiteAggregator()
        site = "hw.test.a"
        agg.on_charge(site, 0.5, 0.0, 0)   # bucket 0
        agg.on_charge(site, 1.0, 0.0, 0)   # bucket 1
        agg.on_charge(site, 700.0, 0.0, 0)  # bucket 10
        assert agg.histogram(site) == {0: 1, 1: 1, 10: 1}

    def test_reset_forgets_everything(self):
        agg = SiteAggregator()
        agg.on_charge("hw.test.a", 5.0, 0.0, 0)
        agg.reset()
        assert agg.total() == 0.0
        assert agg.sites() == []


class TestRingLog:
    def test_records_in_order(self):
        log = RingLog(capacity=4)
        for i in range(3):
            log.on_charge(f"hw.test.s{i}", float(i), float(i), i)
        events = log.events()
        assert [e.site for e in events] == \
            ["hw.test.s0", "hw.test.s1", "hw.test.s2"]
        assert isinstance(events[0], ChargeRecord)
        assert log.dropped == 0

    def test_overflow_evicts_oldest_and_counts_dropped(self):
        log = RingLog(capacity=3)
        for i in range(7):
            log.on_charge(f"hw.test.s{i}", float(i), float(i), i)
        assert len(log) == 3
        assert log.dropped == 4
        assert [e.site for e in log.events()] == \
            ["hw.test.s4", "hw.test.s5", "hw.test.s6"]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingLog(capacity=0)

    def test_attach_ring_log_convenience(self, machine):
        log = machine.obs.attach_ring_log(capacity=16)
        machine.clock.charge(1.0, site="hw.test.a")
        assert len(log) == 1
        machine.obs.remove_sink(log)


class TestSpans:
    def test_nested_spans_attribute_self_vs_inclusive(self):
        clock = Clock()
        obs = Observability(clock)
        with obs.span("libmpk.outer"):
            clock.charge(10.0, site="libmpk.test.a")
            with obs.span("kernel.inner"):
                clock.charge(4.0, site="kernel.test.b")
        profile = obs.profile()
        outer = profile[("libmpk.outer",)]
        inner = profile[("libmpk.outer", "kernel.inner")]
        assert outer.count == 1
        assert outer.cycles == pytest.approx(14.0)   # inclusive
        assert outer.self_cycles == pytest.approx(10.0)
        assert inner.cycles == pytest.approx(4.0)
        assert inner.self_cycles == pytest.approx(4.0)

    def test_counter_aggregation_across_nested_spans(self, lib, task):
        """Spans do not disturb the flat per-site counters: cycles
        charged inside nested spans land exactly once."""
        obs = lib._kernel.machine.obs
        before = obs.clock.now
        lib.mpk_mmap(task, 100, PAGE_SIZE, RW)  # libmpk + kernel spans
        assert obs.clock.now > before
        assert obs.aggregator.total() == pytest.approx(obs.clock.now)

    def test_span_subscription_and_unsubscription(self):
        clock = Clock()
        obs = Observability(clock)
        seen = []

        def on_span(record, ancestors):
            seen.append((record.label, ancestors))

        obs.subscribe_spans(on_span)
        with obs.span("libmpk.outer"):
            with obs.span("kernel.inner"):
                pass
        assert seen == [("kernel.inner", ("libmpk.outer",)),
                        ("libmpk.outer", ())]
        obs.unsubscribe_spans(on_span)
        obs.unsubscribe_spans(on_span)  # unknown callback: no-op
        with obs.span("libmpk.outer"):
            pass
        assert len(seen) == 2  # nothing new after unsubscribe

    def test_span_emitted_on_exception(self):
        clock = Clock()
        obs = Observability(clock)
        with pytest.raises(RuntimeError):
            with obs.span("kernel.boom"):
                clock.charge(2.0, site="kernel.test.a")
                raise RuntimeError("inside")
        assert obs.profile()[("kernel.boom",)].cycles == \
            pytest.approx(2.0)
        assert obs.span_depth == 0


class TestConservation:
    def test_holds_from_cycle_zero(self, machine):
        ok, delta = machine.obs.audit()
        assert ok and delta == 0.0

    def test_holds_after_benchmark_style_workload(self):
        """Table-1-style run plus libmpk churn: every cycle the clock
        advanced is accounted to some site."""
        bed = make_testbed(threads=4, evict_rate=1.0)
        kernel, task, lib = bed.kernel, bed.task, bed.lib
        addr = kernel.sys_mmap(task, PAGE_SIZE, RW)
        for _ in range(50):  # raw-syscall churn (libmpk holds all pkeys)
            kernel.sys_mprotect(task, addr, PAGE_SIZE, PROT_READ)
            kernel.sys_mprotect(task, addr, PAGE_SIZE, RW)
        for vkey in range(100, 120):  # force key-cache eviction
            buf = lib.mpk_mmap(task, vkey, 2 * PAGE_SIZE, RW)
            with lib.domain(task, vkey, RW):
                task.write(buf, b"payload")
        lib.mpk_mprotect(task, 100, PROT_READ)
        obs = kernel.machine.obs
        assert obs.clock.now > 100_000  # a real workload ran
        ok, delta = obs.audit()
        assert ok, f"attribution leak: {delta} cycles"
        assert obs.aggregator.total() == pytest.approx(obs.clock.now)

    def test_every_layer_shows_up(self, lib, task):
        lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        with lib.domain(task, 100, RW):
            pass
        layers = set(lib._kernel.machine.obs.breakdown(depth=1))
        assert {"hw", "kernel", "libmpk"} <= layers

    def test_negative_charge_rejected(self):
        clock = Clock()
        with pytest.raises(ValueError):
            clock.charge(-1.0, site="hw.test.a")


class TestRendering:
    def test_format_breakdown_table(self, lib, task):
        lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        obs = lib._kernel.machine.obs
        text = obs.format_breakdown(depth=2, limit=5)
        assert "site" in text and "share" in text
        assert len(text.splitlines()) <= 6

    def test_format_profile_tree(self, lib, task):
        lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        text = lib._kernel.machine.obs.format_profile()
        assert "libmpk.mpk_mmap" in text
        assert "  kernel.sys_mmap" in text  # indented child

    def test_mpk_stats_procfs_node(self, process, lib, task):
        from repro.kernel.procfs import format_mpk_stats, mpk_stats
        lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        stats = mpk_stats(process)
        assert stats["conservation_ok"]
        assert stats["clock_cycles"] == \
            pytest.approx(stats["attributed_cycles"])
        assert set(stats["by_layer"]) >= {"kernel", "libmpk"}
        text = format_mpk_stats(process)
        assert "Conservation:     ok" in text
        assert "kernel.mmap" in text

    def test_reading_stats_charges_nothing(self, process, lib, task):
        from repro.kernel.procfs import format_mpk_stats
        lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
        clock = lib._kernel.clock
        before = clock.now
        format_mpk_stats(process)
        assert clock.now == before


class TestPerfSummaryIntegration:
    def test_charge_sites_counted(self, machine):
        machine.core(0).execute_adds(1)
        assert machine.perf_summary()["charge_sites"] >= 1


class TestSiteInterning:
    def test_labels_get_dense_stable_ids(self):
        clock = Clock()
        a = clock.site_id("hw.test.a")
        b = clock.site_id("hw.test.b")
        assert (a, b) == (0, 1)
        assert clock.site_id("hw.test.a") == a  # stable on re-intern
        assert clock.site_name(b) == "hw.test.b"
        assert clock.find_site("hw.test.c") is None
        assert clock.site_count == 2

    def test_bound_aggregator_shares_the_clock_table(self):
        """The aggregator's fast path receives interned ids; its
        dict-shaped views still resolve them back to labels."""
        clock = Clock()
        agg = SiteAggregator()
        clock.add_sink(agg)
        clock.charge(5.0, site="kernel.test.x")
        clock.charge(7.0, site="kernel.test.x")
        assert agg.cycles == {"kernel.test.x": pytest.approx(12.0)}
        assert agg.counts == {"kernel.test.x": 2}
        assert agg.histogram("kernel.test.x") != {}

    def test_string_and_id_paths_agree(self):
        """A direct on_charge call and a clock-dispatched charge land
        in the same per-site slot."""
        clock = Clock()
        agg = SiteAggregator()
        clock.add_sink(agg)
        clock.charge(1.0, site="hw.test.a")
        agg.on_charge("hw.test.a", 2.0, 0.0, 0)
        assert agg.cycles["hw.test.a"] == pytest.approx(3.0)


class TestKeyCostTables:
    def test_mean_cost_per_key(self):
        clock = Clock()
        obs = Observability(clock)
        obs.charge_key_cost("libmpk.keycache.reload", 100, 4_000.0)
        obs.charge_key_cost("libmpk.keycache.reload", 100, 2_000.0)
        obs.charge_key_cost("libmpk.keycache.reload", 101, 500.0)
        assert obs.key_cost("libmpk.keycache.reload",
                            100) == pytest.approx(3_000.0)
        assert obs.key_costs("libmpk.keycache.reload") == {
            100: pytest.approx(3_000.0), 101: pytest.approx(500.0)}

    def test_unknown_table_or_key_yields_default(self):
        clock = Clock()
        obs = Observability(clock)
        assert obs.key_cost("libmpk.keycache.reload", 100) == 0.0
        assert obs.key_cost("libmpk.keycache.reload", 100,
                            default=7.5) == 7.5
        obs.charge_key_cost("libmpk.keycache.reload", 100, 1.0)
        assert obs.key_cost("libmpk.keycache.reload", 999,
                            default=-1.0) == -1.0
        assert obs.key_costs("other.table") == {}

    def test_recording_is_purely_observational(self):
        """charge_key_cost attributes already-charged cycles — it must
        never touch the clock itself."""
        clock = Clock()
        obs = Observability(clock)
        before = clock.now
        obs.charge_key_cost("libmpk.keycache.reload", 100, 4_000.0)
        assert clock.now == before


class TestMetricSeries:
    def test_interned_ids_record_like_labels(self):
        clock = Clock()
        obs = Observability(clock)
        mid = obs.metric_id("apps.test.depth")
        assert obs.metric_id("apps.test.depth") == mid  # stable
        obs.record_metric_id(mid, 3.0)
        obs.record_metric("apps.test.depth", 5.0)
        series = obs.metric("apps.test.depth")
        assert series.count == 2
        assert series.total == pytest.approx(8.0)
        assert series.minimum == 3.0 and series.maximum == 5.0

    def test_empty_series_summary_is_json_safe(self):
        """A pre-registered series that never saw an observation must
        not leak ±inf into JSON reports (procfs serializes these)."""
        import json
        import math

        clock = Clock()
        obs = Observability(clock)
        obs.metric_id("apps.test.never_recorded")
        summary = obs.metrics_summary()["apps.test.never_recorded"]
        assert summary["count"] == 0
        assert summary["minimum"] is None
        assert summary["maximum"] is None
        assert summary["last"] is None
        assert not any(isinstance(v, float) and math.isinf(v)
                       for v in summary.values())
        json.dumps(summary)  # must not require allow_nan fallbacks

    def test_metrics_summary_sorted_and_round_trips(self):
        import json

        clock = Clock()
        obs = Observability(clock)
        obs.record_metric("apps.b.site", 1.0)
        obs.record_metric("apps.a.site", 2.0)
        summary = obs.metrics_summary()
        assert list(summary) == ["apps.a.site", "apps.b.site"]
        assert json.loads(json.dumps(summary)) == summary

    def test_mpk_stats_exposes_metrics(self, process):
        from repro.kernel.procfs import mpk_stats

        obs = process.kernel.machine.obs
        obs.record_metric("apps.test.depth", 4.0)
        obs.metric_id("apps.test.empty")
        stats = mpk_stats(process)
        assert stats["metrics"]["apps.test.depth"]["mean"] == 4.0
        assert stats["metrics"]["apps.test.empty"]["minimum"] is None
