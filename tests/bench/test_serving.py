"""The serving engine: arrivals, percentiles, slicing, blocking, and
the bit-identical determinism gate."""

import pytest

from repro.bench.serving import (
    ArrivalSchedule,
    PoissonArrivals,
    ServingEngine,
    _run_httpd_scenario,
    _run_memcached_scenario,
    blocking_begin,
    percentile,
    run_servebench,
)
from repro.consts import PROT_READ, PROT_WRITE
from repro.errors import MpkKeyExhaustion
from repro.kernel.task import WaitQueue

RW = PROT_READ | PROT_WRITE


class TestArrivalSchedule:
    def test_uniform_spacing(self):
        sched = ArrivalSchedule.uniform(4, rate_per_sec=2.4e9)
        assert sched.arrivals == (0.0, 1.0, 2.0, 3.0)
        assert len(sched) == 4
        assert sched.span_cycles == 3.0

    def test_poisson_is_seed_deterministic(self):
        a = ArrivalSchedule.poisson(32, 1000.0, seed=3)
        b = ArrivalSchedule.poisson(32, 1000.0, seed=3)
        c = ArrivalSchedule.poisson(32, 1000.0, seed=4)
        assert a.arrivals == b.arrivals
        assert a.arrivals != c.arrivals

    def test_poisson_mean_gap_tracks_rate(self):
        sched = ArrivalSchedule.poisson(2000, 1000.0, seed=1)
        mean_gap = sched.span_cycles / len(sched)
        assert mean_gap == pytest.approx(2.4e9 / 1000.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalSchedule((2.0, 1.0))
        with pytest.raises(ValueError):
            ArrivalSchedule.uniform(0, 10.0)
        with pytest.raises(ValueError):
            ArrivalSchedule.poisson(4, 0.0, seed=1)


class TestPoissonArrivals:
    def test_matches_materialized_schedule_bit_for_bit(self):
        """The lazy stream and the materialized schedule must produce
        the *same floats* — across a batch boundary, so the internal
        batching provably doesn't perturb the RNG sequence."""
        count = PoissonArrivals.BATCH + 500
        lazy = PoissonArrivals(count, 3_000.0, seed=9)
        eager = ArrivalSchedule.poisson(count, 3_000.0, seed=9)
        assert tuple(lazy.iter_arrivals()) == eager.arrivals
        assert len(lazy) == count

    def test_stream_is_restartable(self):
        lazy = PoissonArrivals(16, 1_000.0, seed=2)
        assert list(lazy.iter_arrivals()) == list(lazy.iter_arrivals())

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0, 10.0, seed=1)
        with pytest.raises(ValueError):
            PoissonArrivals(4, 0.0, seed=1)


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100

    def test_small_samples(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([3.0, 1.0], 50) == 1.0
        assert percentile([3.0, 1.0], 99) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 0)


def _charging_job(kernel, cycles_per_step, steps):
    """A job factory charging a fixed number of cycles per step."""

    def factory(task, conn_id):
        def job():
            for _ in range(steps):
                kernel.clock.charge(cycles_per_step, site="test.serve")
                yield
        return job()

    return factory


class TestServingEngine:
    def _engine(self, kernel, process, cores=(1,), workers=1, **kw):
        engine = ServingEngine(kernel, cores=list(cores), **kw)
        for i in range(workers):
            engine.add_worker(process.spawn_task(),
                              core_id=cores[i % len(cores)])
        return engine

    def test_serves_every_connection(self, kernel, process):
        engine = self._engine(kernel, process)
        engine.offer(ArrivalSchedule.uniform(5, 1e6),
                     _charging_job(kernel, 100.0, steps=3))
        report = engine.run()
        assert report.completed == 5
        assert report.unserved == 0
        assert len(report.latencies) == 5
        assert all(lat > 0 for lat in report.latencies)

    def test_latency_includes_queue_wait(self, kernel, process):
        """Back-to-back arrivals on one worker: the second connection
        waits for the first, so its latency exceeds its service time."""
        engine = self._engine(kernel, process)
        engine.offer(ArrivalSchedule((0.0, 0.0)),
                     _charging_job(kernel, 1000.0, steps=2))
        report = engine.run()
        assert report.completed == 2
        first, second = report.latencies
        assert second > first
        assert report.queue_waits[1] > 0

    def test_quantum_preempts_between_workers(self, kernel, process):
        """Two workers on one core with a tiny quantum must interleave:
        preemptions happen and both connections finish."""
        engine = self._engine(kernel, process, cores=(1,), workers=2,
                              quantum=4000.0)
        engine.offer(ArrivalSchedule((0.0, 0.0)),
                     _charging_job(kernel, 2000.0, steps=10))
        report = engine.run()
        assert report.completed == 2
        assert report.preemptions > 0
        # Interleaving, not serialization: the finish times land within
        # a couple of slices of each other, not one full 20k-cycle
        # service time apart.
        spread = abs(report.latencies[0] - report.latencies[1])
        assert spread < 10 * 2000.0

    def test_no_preemption_when_alone_on_core(self, kernel, process):
        engine = self._engine(kernel, process, cores=(1,), workers=1,
                              quantum=150.0)
        engine.offer(ArrivalSchedule((0.0,)),
                     _charging_job(kernel, 100.0, steps=10))
        report = engine.run()
        assert report.completed == 1
        assert report.preemptions == 0

    def test_idle_cores_fast_forward_to_arrivals(self, kernel, process):
        """A late arrival on an idle engine starts at its arrival time,
        not at cycle 0 — and queue wait stays zero."""
        engine = self._engine(kernel, process)
        engine.offer(ArrivalSchedule((1e6,)),
                     _charging_job(kernel, 100.0, steps=1))
        report = engine.run()
        assert report.completed == 1
        # No backlog: the wait is just dispatch + accept bookkeeping,
        # not the megacycle the engine idled before the arrival.
        assert report.queue_waits[0] <= (kernel.costs.context_switch
                                         + kernel.costs.accept_cycles)
        assert report.makespan_cycles >= 1e6

    def test_blocking_and_wake_across_workers(self, kernel, process):
        """A job yielding a WaitQueue parks its worker; another worker's
        job wakes it and both run to completion."""
        wq = WaitQueue("test.gate")
        order = []

        def blocker(task, conn_id):
            order.append("block")
            yield wq
            order.append("resumed")
            kernel.clock.charge(10.0, site="test.serve")
            yield

        def waker(task, conn_id):
            kernel.clock.charge(10.0, site="test.serve")
            yield
            order.append("wake")
            wq.wake_all()
            yield

        engine = self._engine(kernel, process, cores=(1, 2), workers=2)
        engine.offer(ArrivalSchedule((0.0,)), blocker)
        engine.offer(ArrivalSchedule((0.0,)), waker)
        report = engine.run()
        assert report.completed == 2
        assert report.blocked_waits == 1
        assert order == ["block", "wake", "resumed"]

    def test_stall_with_no_waker_is_detected(self, kernel, process):
        wq = WaitQueue("test.gate")

        def blocker(task, conn_id):
            yield wq

        engine = self._engine(kernel, process)
        engine.offer(ArrivalSchedule((0.0,)), blocker)
        with pytest.raises(RuntimeError, match="stalled"):
            engine.run()

    def test_horizon_leaves_late_arrivals_unserved(self, kernel, process):
        engine = self._engine(kernel, process)
        engine.offer(ArrivalSchedule((0.0, 5e6)),
                     _charging_job(kernel, 100.0, steps=1))
        report = engine.run(horizon=1e6)
        assert report.completed == 1
        assert report.unserved == 1

    def test_engines_are_single_use(self, kernel, process):
        engine = self._engine(kernel, process, name="httpd-test")
        engine.offer(ArrivalSchedule((0.0,)),
                     _charging_job(kernel, 10.0, steps=1))
        engine.run()
        # The error names the engine and its cores so a log line from a
        # multi-scenario run identifies which engine was reused.
        with pytest.raises(RuntimeError, match=r"'httpd-test'.*\[1\]"):
            engine.run()

    def test_streaming_mode_matches_retained_accounting(self):
        """retain_records=False must not change a single simulated
        cycle — only what the engine remembers about them."""
        def run(retain):
            return _run_memcached_scenario(
                seed=11, connections=24, workers=4, num_cores=2,
                rate_per_sec=3_000.0, retain_records=retain)

        retained, streaming = run(True), run(False)
        assert streaming.clock_cycles == retained.clock_cycles
        assert streaming.site_cycles == retained.site_cycles
        assert streaming.completed == retained.completed == 24
        assert streaming.makespan_cycles == retained.makespan_cycles
        assert streaming.latencies == ()
        assert retained.latencies != ()
        # Below the exact cutoff the digest percentiles are nearest-rank
        # on the same multiset, so they match the retained vector's.
        for p in (50, 95, 99):
            assert streaming._latency_percentile(p) == \
                percentile(retained.latencies, p)
        assert streaming.queue_depth_max == retained.queue_depth_max
        assert streaming.queue_depth_mean == retained.queue_depth_mean
        summary = streaming.summary()
        assert "latency_digest" in summary
        assert "latency_digest" not in retained.summary()

    def test_streaming_mode_is_bit_identical(self):
        def run():
            return _run_memcached_scenario(
                seed=5, connections=20, workers=4, num_cores=2,
                rate_per_sec=3_000.0, retain_records=False)

        a, b = run(), run()
        assert a.clock_cycles == b.clock_cycles
        assert a.latency_digest.state() == b.latency_digest.state()
        assert a.queue_wait_digest.state() == b.queue_wait_digest.state()

    def test_busy_core_rejected(self, kernel, process, task):
        with pytest.raises(RuntimeError):
            ServingEngine(kernel, cores=[task.core_id])

    def test_teardown_restores_the_scheduler(self, kernel, process):
        engine = self._engine(kernel, process, cores=(1,), workers=2)
        engine.offer(ArrivalSchedule((0.0, 0.0, 0.0)),
                     _charging_job(kernel, 50.0, steps=2))
        engine.run()
        assert kernel.scheduler.quantum_sink is None
        assert kernel.scheduler.running_task(1) is None
        assert kernel.scheduler.runnable_count(1) == 0
        for worker in engine.workers:
            assert worker.task.waiting_on is None


class TestBlockingBegin:
    def test_blocks_until_a_pin_drops(self, kernel, process, lib):
        """Workers contending for hardware keys genuinely block.

        Both workers share one core with a small quantum.  The hog
        dispatches first and pins every hardware key *within one slice*
        (no yields), then hits its first preemption point; the
        contender's ``blocking_begin`` then finds all keys pinned and
        parks on ``lib.key_waiters`` until the hog's ``mpk_end`` drops
        a pin and wakes it."""
        main = process.main_task
        groups = list(range(100, 100 + lib.cache.capacity))
        for vkey in groups:
            lib.mpk_mmap(main, vkey, 4096, RW)
        extra = 500
        lib.mpk_mmap(main, extra, 4096, RW)

        def hog(task, conn_id):
            for vkey in groups:          # one slice: no yields here
                lib.mpk_begin(task, vkey, RW)
            yield                        # preempted: contender runs
            for vkey in groups:
                lib.mpk_end(task, vkey)  # first end wakes the waiter
                yield

        def contender(task, conn_id):
            yield from blocking_begin(lib, task, extra, RW)
            lib.mpk_end(task, extra)
            yield

        engine = ServingEngine(kernel, cores=[1], quantum=1000.0)
        engine.add_worker(process.spawn_task(), core_id=1)
        engine.add_worker(process.spawn_task(), core_id=1)
        engine.offer(ArrivalSchedule((0.0,)), hog)
        engine.offer(ArrivalSchedule((0.0,)), contender)
        report = engine.run()
        assert report.completed == 2
        assert report.blocked_waits >= 1
        assert lib.key_waiters.stats_wakes >= 1

    def test_gives_up_after_max_spins(self, kernel, process, lib, task):
        with pytest.raises(MpkKeyExhaustion):
            gen = blocking_begin(lib, task, 999, RW, max_spins=0)
            next(gen)


class TestScenarioDeterminism:
    """Same seed, same schedule => bit-identical everything."""

    def _pair(self, scenario, **kw):
        return scenario(**kw), scenario(**kw)

    def test_httpd_bit_identical(self):
        a, b = self._pair(
            _run_httpd_scenario, seed=11, connections=12,
            requests_per_connection=2, response_size=1024, workers=4,
            num_cores=2, rate_per_sec=60_000.0)
        assert a.clock_cycles == b.clock_cycles
        assert a.site_cycles == b.site_cycles
        assert a.latencies == b.latencies
        assert a.queue_waits == b.queue_waits
        assert a.preemptions == b.preemptions
        assert a.completed == 12

    def test_memcached_bit_identical(self):
        a, b = self._pair(
            _run_memcached_scenario, seed=11, connections=10, workers=4,
            num_cores=2, rate_per_sec=3_000.0)
        assert a.clock_cycles == b.clock_cycles
        assert a.site_cycles == b.site_cycles
        assert a.latencies == b.latencies
        assert a.completed == 10

    def test_seed_actually_changes_the_run(self):
        a = _run_memcached_scenario(seed=1, connections=10, workers=4,
                                    num_cores=2, rate_per_sec=3_000.0)
        b = _run_memcached_scenario(seed=2, connections=10, workers=4,
                                    num_cores=2, rate_per_sec=3_000.0)
        assert a.latencies != b.latencies

    def test_deterministic_under_fault_injection(self, ):
        """Armed delay injections are part of the cycle state, so two
        injected runs must still be bit-identical (and differ from the
        clean run)."""
        from repro.faults.inject import FaultInjector, delay

        def injected():
            from repro import Kernel, Machine
            from repro.apps.kvstore import Memcached, Twemperf
            from repro.apps.kvstore.slab import SLAB_BYTES
            from repro import Libmpk

            kernel = Kernel(Machine(num_cores=8))
            process = kernel.create_process()
            main = process.main_task
            lib = Libmpk(process)
            lib.mpk_init(main)
            store = Memcached(kernel, process, main, mode="mpk_begin",
                              lib=lib, slab_bytes=4 * SLAB_BYTES,
                              hash_buckets=1 << 10)
            perf = Twemperf(store, workers=4)
            injector = FaultInjector()
            injector.arm("apps.memcached.connect", occurrence=3,
                         action=delay(kernel.clock, 50_000.0),
                         repeat=True)
            kernel.machine.obs.add_sink(injector)
            engine = ServingEngine(kernel, cores=[1, 2])
            for i in range(4):
                engine.add_worker(process.spawn_task(),
                                  core_id=[1, 2][i % 2])
            schedule = ArrivalSchedule.poisson(10, 3_000.0, seed=5)
            report = perf.run_open_loop(engine, schedule)
            kernel.machine.obs.remove_sink(injector)
            ok, _ = kernel.machine.obs.audit()
            assert ok, "conservation audit failed under injection"
            return report

        a = injected()
        b = injected()
        clean = _run_memcached_scenario(seed=4, connections=10, workers=4,
                                        num_cores=2, rate_per_sec=3_000.0)
        assert a.clock_cycles == b.clock_cycles
        assert a.site_cycles == b.site_cycles
        assert a.latencies == b.latencies
        assert a.clock_cycles != clean.clock_cycles


class TestRunServebench:
    def test_smoke_report_shape(self):
        report = run_servebench(seed=7, connections=8, curves=False)
        assert set(report["benchmarks"]) == {"httpd", "memcached"}
        for row in report["benchmarks"].values():
            assert row["completed"] == 8
            assert "latency_digest" not in row   # retained smoke mode
        assert "curves" not in report

    def test_large_scale_streams_digests(self):
        """The large scale at a tiny connection count: streaming mode
        end to end, digest summaries present, gate passing."""
        report = run_servebench(seed=7, connections=8, scale="large",
                                curves=False)
        assert report["scale"] == "large"
        for row in report["benchmarks"].values():
            assert row["completed"] == 8
            assert row["latency_digest"]["count"] == 8
            assert "queue_wait_digest" in row

    def test_curves_cover_every_multiplier(self):
        from repro.bench.serving import CURVE_MULTIPLIERS

        report = run_servebench(seed=7, connections=6)
        for name in ("httpd", "memcached"):
            points = report["curves"][name]
            assert [pt["load_multiplier"] for pt in points] == \
                list(CURVE_MULTIPLIERS)
            # Heavier offered load never shrinks the queue-depth peak.
            depths = [pt["queue_depth_max"] for pt in points]
            assert depths == sorted(depths)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            run_servebench(scale="galactic")
