"""The resilience layer: engine wait deadlines, admission control,
supervision with restart budgets, and the chaos-soak campaign."""

import pytest

from repro.bench.serving import ArrivalSchedule, ServingEngine, WaitSpec
from repro.errors import MpkTimeout, TaskKilled
from repro.faults.signals import SEGV_PKUERR, SIGSEGV, Siginfo
from repro.kernel.task import WaitQueue


def _engine(kernel, process, cores=(1,), workers=1, killable=False,
            **kw):
    engine = ServingEngine(kernel, cores=list(cores), **kw)
    for i in range(workers):
        task = process.spawn_task()
        if killable:
            task.enable_signals()
        engine.add_worker(task, core_id=cores[i % len(cores)])
    return engine


def _kill(kernel, task):
    """In-job worker kill through the kernel's signal path (the same
    route the chaos campaign uses)."""
    info = Siginfo(SIGSEGV, SEGV_PKUERR, si_addr=0)
    kernel.signal_task(task, info)
    if task.state == "dead":
        raise TaskKilled(f"drill killed tid {task.tid}", tid=task.tid,
                         siginfo=info)


class TestEngineWaitDeadlines:
    def test_unwoken_wait_times_out_instead_of_stalling(self, kernel,
                                                        process):
        """A blocked worker with a deadline and no waker must expire
        (accounted) — pre-deadline engines raised 'stalled' here."""
        engine = _engine(kernel, process)
        wq = WaitQueue("test")

        def factory(task, conn_id):
            def job():
                kernel.clock.charge(100.0, site="test.serve")
                yield WaitSpec(wq, timeout=5_000.0)
                kernel.clock.charge(100.0, site="test.serve")
            return job()

        engine.offer(ArrivalSchedule.uniform(1, 1e6), factory)
        report = engine.run()
        assert report.completed == 0
        assert report.aborted == 1          # timeouts count as aborts
        assert report.wait_timeouts == 1
        assert len(wq) == 0                 # no residue
        assert wq.stats_timeouts == 1

    def test_job_may_catch_the_timeout_and_finish(self, kernel,
                                                  process):
        engine = _engine(kernel, process)
        wq = WaitQueue("test")

        def factory(task, conn_id):
            def job():
                kernel.clock.charge(100.0, site="test.serve")
                try:
                    yield WaitSpec(wq, timeout=5_000.0)
                except MpkTimeout:
                    kernel.clock.charge(50.0, site="test.serve")
            return job()

        engine.offer(ArrivalSchedule.uniform(1, 1e6), factory)
        report = engine.run()
        assert report.completed == 1
        assert report.wait_timeouts == 0    # handled, not dropped
        assert wq.stats_timeouts == 1

    def test_wake_in_time_beats_the_deadline(self, kernel, process):
        engine = _engine(kernel, process, workers=2)
        wq = WaitQueue("test")

        def blocker(task, conn_id):
            def job():
                yield WaitSpec(wq, timeout=1e12)
                kernel.clock.charge(10.0, site="test.serve")
            return job()

        def waker(task, conn_id):
            def job():
                kernel.clock.charge(100.0, site="test.serve")
                yield
                wq.wake_all()
            return job()

        engine.offer(ArrivalSchedule.uniform(1, 1e6), blocker)
        engine.offer(ArrivalSchedule.uniform(1, 1e6), waker)
        report = engine.run()
        assert report.completed == 2
        assert report.wait_timeouts == 0
        assert wq.stats_wakes == 1

    def test_earlier_deadline_expires_first(self, kernel, process):
        """Two blocked workers; the one with the shorter timeout (even
        if it parked later) resumes first."""
        engine = _engine(kernel, process, workers=2)
        wq = WaitQueue("test")
        order = []

        def factory(timeout):
            def make(task, conn_id):
                def job():
                    kernel.clock.charge(100.0, site="test.serve")
                    try:
                        yield WaitSpec(wq, timeout=timeout)
                    except MpkTimeout:
                        order.append(timeout)
                return job()
            return make

        engine.offer(ArrivalSchedule.uniform(1, 1e6), factory(50_000.0))
        engine.offer(ArrivalSchedule.uniform(1, 1e6), factory(5_000.0))
        report = engine.run()
        assert report.completed == 2
        assert order == [5_000.0, 50_000.0]


class TestAdmissionControl:
    def _overload(self, kernel, process):
        """1 worker, slow jobs, a burst of simultaneous arrivals, and
        room for only 2 queued connections."""
        engine = _engine(kernel, process, queue_limit=2)

        def factory(task, conn_id):
            def job():
                for _ in range(4):
                    kernel.clock.charge(250_000.0, site="test.serve")
                    yield
            return job()

        engine.offer(ArrivalSchedule.uniform(8, 2.4e9), factory)
        return engine.run()

    def test_overload_sheds_instead_of_queueing_without_bound(
            self, kernel, process):
        report = self._overload(kernel, process)
        assert report.shed > 0
        assert report.completed > 0
        assert (report.completed + report.aborted + report.shed
                + report.unserved) == report.offered
        assert kernel.machine.obs.metric(
            "apps.serving.shed").count == report.shed
        # Shedding is work: each reset charges conn_reset cycles.
        assert kernel.machine.obs.aggregator.counts[
            "apps.serving.shed"] == report.shed

    def test_shedding_is_deterministic(self):
        from repro import Kernel, Machine

        def run():
            kernel = Kernel(Machine(num_cores=8))
            process = kernel.create_process()
            report = self._overload(kernel, process)
            return (report.shed, report.completed, report.latencies,
                    kernel.clock.now)

        assert run() == run()

    def test_queue_limit_validated(self, kernel):
        with pytest.raises(ValueError):
            ServingEngine(kernel, cores=[1], queue_limit=0)


class TestSupervisedEngine:
    def _supervised(self, kernel, process, max_restarts=8):
        from repro.apps.sslserver.workers import Supervisor

        engine = ServingEngine(kernel, cores=[1])
        pool = Supervisor(kernel, process, server=None, workers=1,
                          crash_policy="kill", schedule=False,
                          max_restarts=max_restarts)
        pool.attach_engine(engine, [1])
        engine.attach_supervisor(pool)
        return engine, pool

    def _killing_factory(self, kernel, kills):
        """Jobs for conn 0 kill their worker once; retries complete."""

        def factory(task, conn_id):
            def job():
                kernel.clock.charge(100.0, site="test.serve")
                yield
                if conn_id == 0 and not kills:
                    kills.append(task.tid)
                    _kill(kernel, task)
                kernel.clock.charge(100.0, site="test.serve")
            return job()

        return factory

    def test_killed_worker_restarts_and_conn_is_readmitted(
            self, kernel, process):
        engine, pool = self._supervised(kernel, process)
        kills = []
        engine.offer(ArrivalSchedule.uniform(3, 1e6),
                     self._killing_factory(kernel, kills))
        report = engine.run()
        assert len(kills) == 1
        assert report.completed == 3        # nothing lost, retried
        assert report.restarts == 1
        assert engine.readmitted == 1
        assert pool.deaths == 1
        assert pool.restarts == 1
        assert pool.live_workers() == 1
        ok, _ = kernel.machine.obs.audit()
        assert ok

    def test_exhausted_budget_degrades_instead_of_raising(
            self, kernel, process):
        engine, pool = self._supervised(kernel, process,
                                        max_restarts=0)
        kills = []
        engine.offer(ArrivalSchedule.uniform(3, 1e6),
                     self._killing_factory(kernel, kills))
        report = engine.run()               # must not raise
        assert pool.gave_up == 1
        assert pool.live_workers() == 0
        assert report.restarts == 0
        assert report.unserved == 3         # incl. the readmitted conn
        assert (report.completed + report.aborted + report.shed
                + report.unserved) == report.offered
        ok, _ = kernel.machine.obs.audit()
        assert ok

    def test_restart_charges_grow_exponentially(self, kernel, process):
        from repro.apps.sslserver.workers import Supervisor

        pool = Supervisor(kernel, process, workers=1,
                          crash_policy="kill", schedule=True,
                          max_restarts=3)

        def killer(worker):
            _kill(kernel, worker)

        agg = kernel.machine.obs.aggregator
        charges = []
        for _ in range(2):
            assert pool.dispatch(killer) is False
            charges.append(agg.cycles["apps.supervisor.backoff"])
        assert charges[0] == pool.backoff_base
        assert charges[1] == 3 * pool.backoff_base   # base + 2*base
        assert agg.counts["apps.supervisor.respawn"] == 2

    def test_dispatch_budget_exhaustion(self, kernel, process):
        from repro.apps.sslserver.workers import Supervisor

        pool = Supervisor(kernel, process, workers=1,
                          crash_policy="kill", schedule=True,
                          max_restarts=1)

        def killer(worker):
            _kill(kernel, worker)

        assert pool.dispatch(killer) is False   # death 1 -> restart 1
        assert pool.dispatch(killer) is False   # death 2 -> gave up
        assert (pool.deaths, pool.restarts, pool.gave_up) == (2, 1, 1)
        assert pool.live_workers() == 0
        with pytest.raises(RuntimeError):
            pool.dispatch(killer)
        ok, _ = kernel.machine.obs.audit()
        assert ok


class TestChaosCampaign:
    def test_script_generation_is_seed_deterministic(self):
        from repro.bench.chaos import generate_script

        assert generate_script(3, events=8) == generate_script(
            3, events=8)
        assert generate_script(3, events=8) != generate_script(
            4, events=8)

    def test_script_json_roundtrip(self):
        from repro.bench.chaos import (generate_script,
                                       script_from_json,
                                       script_to_json)

        script = generate_script(9, events=5)
        assert script_from_json(script_to_json(script)) == script

    def test_soak_passes_all_three_gates(self):
        """Liveness, audit, and two-run determinism are asserted inside
        run_servechaos; a clean return means all gates held."""
        from repro.bench.chaos import run_servechaos

        report = run_servechaos(seed=13, connections=12, events=4)
        assert set(report["scenarios"]) == {"httpd", "memcached"}
        for name, row in report["scenarios"].items():
            assert row["audit_ok"] and row["liveness_ok"], name
            assert (row["completed"] + row["aborted"] + row["shed"]
                    ) + row["unserved"] == row["offered"]
        assert len(report["script"]) == 4

    def test_recorded_script_replays_identically(self):
        from repro.bench.chaos import run_servechaos, script_from_json

        first = run_servechaos(seed=5, connections=10, events=3)
        replay = run_servechaos(
            seed=5, connections=10,
            script=script_from_json(first["script"]))
        assert first["scenarios"] == replay["scenarios"]
        assert first["script"] == replay["script"]

    def test_unknown_event_kind_rejected(self, kernel, process):
        from repro.bench.chaos import ChaosEvent, _arm_script
        from repro.faults.inject import FaultInjector

        with pytest.raises(ValueError):
            _arm_script(FaultInjector(),
                        [ChaosEvent(kind="meteor", site="apps.x",
                                    occurrence=1)],
                        kernel, engine=None)
