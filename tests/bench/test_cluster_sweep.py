"""The clusterbench sweep grid: cell scripts, gating, and the
markdown table the CI step summary renders."""

from repro.bench.cluster import (
    _sweep_script,
    format_sweep_table,
    run_cluster_sweep,
)


class TestSweepPlumbing:
    def test_cell_script_is_deterministic(self):
        names = ["node0", "node1", "node2"]
        assert _sweep_script(names, 10.0) == _sweep_script(names, 10.0)
        short = _sweep_script(names, 10.0)
        long = _sweep_script(names, 40.0)
        assert short[0].duration == 10e6
        assert long[0].duration == 40e6
        assert short[1].kind == "node_kill"

    def test_impossible_cells_are_skipped(self):
        # replicas > nodes is rejected by the shard map, so the sweep
        # never builds those cells (no soak runs: rows come back
        # empty, not an exception).
        sweep = run_cluster_sweep(nodes_axis=(2,), replicas_axis=(3,),
                                  partition_axis_mcyc=(10.0,),
                                  connections=8)
        assert sweep["rows"] == []

    def test_single_cell_passes_the_gates(self):
        sweep = run_cluster_sweep(nodes_axis=(3,), replicas_axis=(2,),
                                  partition_axis_mcyc=(10.0,),
                                  connections=24)
        (row,) = sweep["rows"]
        assert row["nodes"] == 3 and row["replicas"] == 2
        assert row["post_sync_misses"] == 0
        assert row["completed"] + row["shed"] == 24

    def test_table_is_github_markdown(self):
        sweep = {"rows": [{
            "nodes": 4, "replicas": 2, "partition_mcyc": 40.0,
            "completed": 96, "shed": 0, "misses": 0,
            "hints_queued": 191, "hints_drained": 187,
            "hints_dropped": 4, "sync_pages": 17, "sync_retries": 0,
            "post_sync_misses": 0,
        }]}
        table = format_sweep_table(sweep)
        assert "| nodes | replicas |" in table
        assert "| 4 | 2 | 40M | 96 | 0 | 0 | 191/187/4 | 17 | 0 | 0 |" \
            in table
