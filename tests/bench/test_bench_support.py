"""The benchmark harness itself: testbeds, measurement, reporting."""


import pytest

from repro.consts import PROT_READ, PROT_WRITE
from repro.bench import Reporter, make_testbed
from repro.bench.report import RESULTS_DIR

RW = PROT_READ | PROT_WRITE


class TestMakeTestbed:
    def test_default_testbed(self):
        bed = make_testbed()
        assert bed.task.running
        assert bed.siblings == []
        assert bed.lib is not None
        assert bed.lib.cache.capacity == 15

    def test_thread_count(self):
        bed = make_testbed(threads=4)
        assert len(bed.siblings) == 3
        assert all(s.running for s in bed.siblings)
        running = bed.kernel.scheduler.running_tasks(bed.process)
        assert len(running) == 4

    def test_without_libmpk(self):
        bed = make_testbed(with_libmpk=False)
        assert bed.lib is None
        # All keys remain available to the process.
        assert bed.kernel.sys_pkey_alloc(bed.task) == 1

    def test_eviction_rate_passthrough(self):
        bed = make_testbed(evict_rate=0.25)
        assert bed.lib.cache.evict_rate == 0.25

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            make_testbed(threads=0)

    def test_beds_are_isolated(self):
        a = make_testbed()
        b = make_testbed()
        before = b.kernel.clock.now
        a.kernel.clock.charge(1000)
        assert b.kernel.clock.now == before


class TestMeasurement:
    def test_measure_returns_elapsed_cycles(self):
        bed = make_testbed()
        elapsed = bed.measure(lambda: bed.clock.charge(123.0))
        assert elapsed == pytest.approx(123.0)

    def test_measure_avg(self):
        bed = make_testbed()

        def op():
            bed.clock.charge(10.0)

        assert bed.measure_avg(op, 10) == pytest.approx(10.0)

    def test_measure_avg_rejects_zero_repeat(self):
        bed = make_testbed()
        with pytest.raises(ValueError):
            bed.measure_avg(lambda: None, 0)

    def test_measure_resets_pipeline_state(self):
        bed = make_testbed(with_libmpk=False)
        core = bed.kernel.machine.core(bed.task.core_id)
        core.wrpkru(0)  # leaves a serialization shadow
        elapsed = bed.measure(lambda: core.execute_adds(4))
        # Full-throughput ADDs: the shadow was cleared.
        assert elapsed == pytest.approx(1.0)


class TestReporter:
    def test_writes_archive_file(self):
        reporter = Reporter("selftest_report")
        reporter.header("Self test")
        reporter.table(["a", "b"], [[1, 2], [30, 40]])
        reporter.compare("metric", 1.0, 1.05)
        reporter.flush()
        archive = RESULTS_DIR / "selftest_report.txt"
        try:
            text = archive.read_text()
            assert "Self test" in text
            assert "30" in text
            assert "metric" in text
        finally:
            archive.unlink(missing_ok=True)

    def test_table_aligns_columns(self):
        reporter = Reporter("selftest_align")
        reporter.table(["col", "value"], [["x", 1], ["longer", 22]])
        lines = reporter._lines
        header, rule, *rows = lines
        assert header.startswith("col")
        assert all(len(row) <= len(rule) + 2 for row in rows)

    def test_csv_export(self):
        reporter = Reporter("selftest_csv")
        reporter.table(["pages", "cycles"], [[1, "1,094"],
                                             [10, "10,940 (*)"]])
        path = reporter.write_csv()
        try:
            lines = path.read_text().splitlines()
            assert lines[0] == "pages,cycles"
            assert lines[1] == "1,1094"
            assert lines[2] == "10,10940"
        finally:
            path.unlink(missing_ok=True)

    def test_csv_before_table_rejected(self):
        with pytest.raises(ValueError):
            Reporter("selftest_csv2").write_csv()
