"""Streaming percentile digests: P² accuracy, exact-mode parity, and
bit-identical state."""

import math
import random

import pytest

from repro.bench.digest import EXACT_CUTOFF, LatencyDigest, P2Quantile
from repro.bench.serving import percentile


def _streams():
    """Seeded observation streams over several distribution shapes —
    plain ``random.Random`` so the suite needs no extra dependencies."""
    for seed in (1, 7, 42):
        rng = random.Random(seed)
        yield (f"uniform-{seed}",
               [rng.uniform(0.0, 1000.0) for _ in range(6000)])
        rng = random.Random(seed + 100)
        yield (f"exponential-{seed}",
               [rng.expovariate(1.0 / 250.0) for _ in range(6000)])
        rng = random.Random(seed + 200)
        yield (f"bimodal-{seed}",
               [rng.gauss(100.0, 10.0) if rng.random() < 0.9
                else rng.gauss(900.0, 50.0) for _ in range(6000)])


class TestP2Quantile:
    def test_small_n_is_nearest_rank(self):
        est = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            est.add(x)
        assert est.value() == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)
        with pytest.raises(ValueError):
            P2Quantile(0.5).value()

    @pytest.mark.parametrize("p", [50, 95, 99])
    def test_tracks_exact_percentiles(self, p):
        """Property check: over seeded streams from several
        distribution shapes, the streaming estimate lands within a
        ±1-percentile-rank band of the exact nearest-rank answer."""
        for name, values in _streams():
            est = P2Quantile(p / 100.0)
            for x in values:
                est.add(x)
            lo = percentile(values, max(p - 1, 1))
            hi = percentile(values, min(p + 1, 100))
            assert lo <= est.value() <= hi, (
                f"{name}: p{p} estimate {est.value()} outside "
                f"[{lo}, {hi}]")

    def test_state_is_deterministic(self):
        def build():
            rng = random.Random(99)
            est = P2Quantile(0.95)
            for _ in range(1000):
                est.add(rng.expovariate(0.01))
            return est.state()

        assert build() == build()


class TestLatencyDigest:
    def test_exact_mode_matches_nearest_rank_bit_for_bit(self):
        """Below the cutoff the digest IS nearest-rank on the retained
        values — the property that keeps the committed small-scale
        BENCH_serving.json numbers unchanged."""
        rng = random.Random(3)
        values = [rng.uniform(0.0, 1e6) for _ in range(64)]
        digest = LatencyDigest()
        for x in values:
            digest.add(x)
        assert digest.exact
        for p in (50, 95, 99, 100):
            assert digest.percentile(p) == percentile(values, p)
        assert digest.mean == sum(values) / len(values)

    def test_exact_mode_is_order_independent(self):
        values = [float(x) for x in range(100)]
        forward, backward = LatencyDigest(), LatencyDigest()
        for x in values:
            forward.add(x)
        for x in reversed(values):
            backward.add(x)
        for p in (50, 95, 99):
            assert forward.percentile(p) == backward.percentile(p)

    def test_flips_to_streaming_past_cutoff(self):
        digest = LatencyDigest(exact_cutoff=10)
        for x in range(10):
            digest.add(float(x))
        assert digest.exact          # at the cutoff: still exact
        digest.add(10.0)
        assert not digest.exact      # past it: raw values dropped
        assert digest.count == 11
        digest.percentile(95)        # tracked quantile still answers
        with pytest.raises(ValueError, match="not tracked"):
            digest.percentile(42)

    def test_default_cutoff_exceeds_smoke_scale(self):
        assert EXACT_CUTOFF >= 4096

    def test_streaming_accuracy(self):
        """Past the cutoff, digest percentiles stay within the same
        ±1-rank band as the raw P² estimators."""
        for name, values in _streams():
            digest = LatencyDigest(exact_cutoff=100)
            for x in values:
                digest.add(x)
            assert not digest.exact
            for p in (50, 95, 99):
                lo = percentile(values, max(p - 1, 1))
                hi = percentile(values, min(p + 1, 100))
                assert lo <= digest.percentile(p) <= hi, (
                    f"{name}: p{p}")

    def test_state_bit_identical_across_runs(self):
        def build():
            rng = random.Random(17)
            digest = LatencyDigest(exact_cutoff=50)
            for _ in range(500):
                digest.add(rng.expovariate(1e-4))
            return digest.state()

        assert build() == build()

    def test_empty_summary_is_json_safe(self):
        summary = LatencyDigest().summary()
        assert summary["count"] == 0
        assert summary["minimum"] is None
        assert summary["maximum"] is None
        assert summary["mean"] == 0.0
        assert not any(isinstance(v, float) and math.isinf(v)
                       for v in summary.values())
