"""The hostbench speedup gates, driven by synthetic reports.

The real benchmark is timed in CI; these tests pin the gate *logic* —
per-workload absolute floors with failure messages that name the
regressing workload, the relative-to-baseline check, and the markdown
rendering — without burning benchmark wall time in the unit suite.
"""

from __future__ import annotations

from repro.bench import hostbench


def _report(speedups: dict[str, float]) -> dict:
    return {
        "schema": 2,
        "note": "synthetic",
        "benchmarks": {
            name: {
                "sim_cycles": 1000.0,
                "wall_fast_s": 0.010,
                "wall_slow_s": round(0.010 * speedup, 6),
                "wall_fast_all_s": [0.010],
                "wall_slow_all_s": [round(0.010 * speedup, 6)],
                "repeat": 1,
                "speedup": speedup,
            }
            for name, speedup in speedups.items()
        },
    }


ALL_GOOD = {"fig8_cache": 2.0, "table1": 1.05, "fig14_memcached": 1.2}


class TestSpeedupFloors:
    def test_passes_when_every_workload_clears_floor(self):
        assert hostbench.check_speedup_floors(_report(ALL_GOOD)) == []

    def test_failure_names_the_regressing_workload(self):
        bad = dict(ALL_GOOD, table1=0.93)
        problems = hostbench.check_speedup_floors(_report(bad))
        assert len(problems) == 1
        assert "table1" in problems[0]
        assert "0.93" in problems[0]
        assert "fig8" not in problems[0]

    def test_every_workload_has_a_floor(self):
        assert set(hostbench.SPEEDUP_FLOORS) == set(hostbench.WORKLOADS)

    def test_all_floors_require_fast_path_to_win(self):
        assert all(floor >= 1.0
                   for floor in hostbench.SPEEDUP_FLOORS.values())

    def test_missing_workload_is_a_failure(self):
        partial = {k: v for k, v in ALL_GOOD.items() if k != "table1"}
        problems = hostbench.check_speedup_floors(_report(partial))
        assert any("table1" in p and "missing" in p for p in problems)

    def test_subset_restriction_skips_absent_workloads(self):
        partial = {"table1": 1.1}
        assert hostbench.check_speedup_floors(
            _report(partial), workloads=["table1"]) == []


class TestBaselineGate:
    def test_includes_absolute_floors(self):
        bad = dict(ALL_GOOD, fig14_memcached=0.8)
        problems = hostbench.check_against_baseline(
            _report(bad), _report(ALL_GOOD))
        assert any("fig14_memcached" in p for p in problems)

    def test_relative_regression_fails_even_above_absolute_floor(self):
        # fig8 at 1.2x clears the 1.0 floor but is far below 75% of a
        # 2.0x baseline.
        decayed = dict(ALL_GOOD, fig8_cache=1.2)
        problems = hostbench.check_against_baseline(
            _report(decayed), _report(ALL_GOOD))
        assert any("fig8_cache" in p and "baseline" in p
                   for p in problems)

    def test_passes_at_baseline(self):
        assert hostbench.check_against_baseline(
            _report(ALL_GOOD), _report(ALL_GOOD)) == []


class TestMarkdown:
    def test_renders_one_row_per_workload_with_floor(self):
        text = hostbench.format_markdown(_report(ALL_GOOD))
        for name in ALL_GOOD:
            assert f"| {name} |" in text
        assert "1.00x" in text  # the floor column
        assert text.startswith("### ")
