"""The keyscale shootout: sweep mechanics, gates, and rendering."""

import json

import pytest

from repro.bench import keyscale
from repro.core.keycache import EVICTION_POLICIES


@pytest.fixture(scope="module")
def small_report():
    """One tiny but complete sweep shared by the read-only tests:
    both workloads, two policies, one small domain point."""
    return keyscale.run_keyscale(seed=11, domains=(60,),
                                 policies=("lru", "cost-aware"),
                                 smoke=True)


class TestSweep:
    def test_report_schema(self, small_report):
        report = small_report
        assert report["bench"] == "keyscale"
        assert report["domains"] == [60]
        assert report["policies"] == ["lru", "cost-aware"]
        assert report["determinism"] == {"runs_per_cell": 2,
                                         "identical": True}
        assert set(report["workloads"]) == {"serving", "jit"}
        for by_policy in report["workloads"].values():
            for curve in by_policy.values():
                assert len(curve) == 1
                cell = curve[0]
                assert "_fingerprint" not in cell
                assert cell["domains"] == 60
                assert cell["throughput_rps"] > 0
                assert 0.0 <= cell["hit_rate"] <= 1.0

    def test_comparison_covers_both_workloads(self, small_report):
        comparison = small_report["comparison"]
        assert set(comparison) == {"serving", "jit"}
        for summary in comparison.values():
            assert "60" in summary["wait_timeout_rate_by_domains"]
            # No >=1k point in this sweep: the verdict cannot claim a
            # win it never measured.
            assert summary["points_at_1k_plus"] == 0
            assert summary["cost_aware_beats_lru_at_1k_plus"] is False

    def test_default_policy_set_is_the_registry(self):
        assert keyscale.DEFAULT_POLICIES == tuple(EVICTION_POLICIES)
        assert set(keyscale.DEFAULT_POLICIES) >= {
            "lru", "fifo", "random", "clock", "cost-aware"}

    def test_unknown_policy_rejected(self):
        with pytest.raises(AssertionError, match="unknown policy"):
            keyscale.run_keyscale(policies=("belady",), domains=(50,))

    def test_unknown_workload_rejected(self):
        with pytest.raises(AssertionError, match="unknown workload"):
            keyscale.run_keyscale(workloads=("batch",), domains=(50,))


class TestCells:
    def test_serving_contention_expires_waits(self):
        """At 1k domains the serving shape must actually exercise the
        SLO path: exhaustion parks workers and some connections time
        out — a policy shootout over a workload with zero timeouts
        would compare nothing."""
        cell = keyscale._run_serving_cell("lru", 1_000, 11, 96)
        assert cell["wait_timeouts"] > 0
        assert cell["aborted"] == cell["wait_timeouts"]
        assert cell["completed"] + cell["aborted"] == cell["offered"]

    def test_serving_cell_is_deterministic(self):
        a = keyscale._run_serving_cell("clock", 60, 11, 24)
        b = keyscale._run_serving_cell("clock", 60, 11, 24)
        assert a == b

    def test_jit_cell_is_deterministic_and_quiet(self):
        a = keyscale._run_jit_cell("random", 80, 11, 120)
        b = keyscale._run_jit_cell("random", 80, 11, 120)
        assert a == b
        assert a["wait_timeouts"] == 0  # single thread: nobody waits


class TestRendering:
    def test_text_report_tables_and_curves(self, small_report):
        text = keyscale.format_report(small_report)
        assert "workload: serving" in text
        assert "workload: jit" in text
        assert "lru" in text and "cost-aware" in text
        assert "throughput (req/s) vs domains" in text
        assert "determinism gate: 2 runs per cell" in text

    def test_markdown_summary(self, small_report):
        md = keyscale.format_markdown(small_report)
        assert md.startswith("### keyscale")
        assert "| policy | throughput/s |" in md
        assert "cost-aware" in md

    def test_write_report_round_trips(self, small_report, tmp_path):
        path = tmp_path / "keyscale.json"
        keyscale.write_report(small_report, path)
        assert json.loads(path.read_text()) == small_report
        # Byte-stable serialization (sorted keys, trailing newline):
        # re-writing the same report must reproduce the file exactly.
        first = path.read_bytes()
        keyscale.write_report(small_report, path)
        assert path.read_bytes() == first
