#!/usr/bin/env python3
"""Quickstart: the eight libmpk APIs on the simulated MPK machine.

Walks through Figure 5 of the paper: domain-based isolation with
mpk_begin/mpk_end, and quick global permission changes with
mpk_mprotect — plus the per-group heap and a look at what the
virtualized keys are doing underneath.

Run:  python examples/quickstart.py
"""

from repro import (
    Kernel,
    Libmpk,
    PROT_EXEC,
    PROT_READ,
    PROT_WRITE,
    PkeyFault,
)

RW = PROT_READ | PROT_WRITE

GROUP_1 = 100   # hardcoded virtual keys, as the paper prescribes
GROUP_2 = 101


def domain_based_isolation(kernel, lib, task):
    """The first usage model: thread-local unlock windows."""
    print("== domain-based isolation (mpk_begin / mpk_end) ==")
    addr = lib.mpk_mmap(task, GROUP_1, 0x1000, RW)
    print(f"page group {GROUP_1} mapped at {addr:#x} "
          f"(hardware key {lib.group(GROUP_1).pkey})")

    lib.mpk_begin(task, GROUP_1, RW)
    task.write(addr, b"in-domain write")
    print("inside the domain :", task.read(addr, 15))
    lib.mpk_end(task, GROUP_1)

    try:
        task.read(addr, 15)
    except PkeyFault as fault:
        print("outside the domain:", f"SEGMENTATION FAULT ({fault})")


def quick_permission_change(kernel, lib, task):
    """The second usage model: an mprotect() drop-in replacement."""
    print("\n== global permission change (mpk_mprotect) ==")
    addr = lib.mpk_mmap(task, GROUP_2, 0x1000, RW)

    lib.mpk_mprotect(task, GROUP_2, RW)
    task.write(addr, b"\x90\xc3")       # "code" bytes
    before = kernel.clock.snapshot()
    lib.mpk_mprotect(task, GROUP_2, PROT_READ | PROT_EXEC)
    cost = kernel.clock.snapshot() - before
    print(f"rw -> r-x switch cost: {cost:.1f} simulated cycles "
          f"(mprotect would be ~1094)")
    print("page is executable    :", task.fetch(addr, 2).hex())
    try:
        task.write(addr, b"\xcc")
    except PkeyFault:
        print("page is not writable  : write killed by pkey fault")


def per_group_heap(kernel, lib, task):
    """mpk_malloc / mpk_free: object allocation inside a group."""
    print("\n== the per-group heap (mpk_malloc / mpk_free) ==")
    secret = lib.mpk_malloc(task, GROUP_1, 64)
    with lib.domain(task, GROUP_1, RW):
        task.write(secret, b"-----PRIVATE KEY-----")
    print(f"secret stored at {secret:#x}; readable outside the domain?",
          task.try_read(secret, 21))
    lib.mpk_free(task, GROUP_1, secret)


def more_groups_than_keys(kernel, lib, task):
    """Key virtualization: 40 page groups on 15 hardware keys."""
    print("\n== more groups than hardware keys ==")
    for vkey in range(200, 240):
        addr = lib.mpk_mmap(task, vkey, 0x1000, RW)
        with lib.domain(task, vkey, RW):
            task.write(addr, vkey.to_bytes(2, "little"))
    for vkey in (200, 215, 239):
        with lib.domain(task, vkey, PROT_READ):
            value = int.from_bytes(
                task.read(lib.group(vkey).base, 2), "little")
            assert value == vkey
    cache = lib.cache
    print(f"groups created: {len(lib.groups())}, hardware keys: "
          f"{cache.capacity}, cache hits: {cache.stats_hits}, "
          f"misses: {cache.stats_misses}, evictions: "
          f"{cache.stats_evictions}")


def main():
    kernel = Kernel()
    process = kernel.create_process()
    task = process.main_task

    lib = Libmpk(process)
    lib.mpk_init(task, evict_rate=1.0)

    domain_based_isolation(kernel, lib, task)
    quick_permission_change(kernel, lib, task)
    per_group_heap(kernel, lib, task)
    more_groups_than_keys(kernel, lib, task)

    print(f"\ntotal simulated time: {kernel.clock.now:,.0f} cycles")


if __name__ == "__main__":
    main()
