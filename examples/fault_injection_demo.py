#!/usr/bin/env python3
"""The fault plane: signals, deterministic injection, consistency audits.

Three escalating demonstrations:

1. **Signal recovery** — a worker thread touches the isolated private
   key heap outside an open domain.  Instead of tearing the process
   down, the simulated kernel delivers a SIGSEGV with
   ``si_code=SEGV_PKUERR``; one worker aborts its request, another
   (without a handler) is killed and respawned.  Either way the other
   workers keep serving.
2. **Deterministic injection** — every simulated cycle is charged to a
   dotted site label, so "the 3rd metadata update of this run" is an
   exact, replayable point in time.  We arm a failure there and show
   mpk_begin rolling back cleanly.
3. **The campaign** — sweep an injected failure over *every* occurrence
   of every charge site in a Table-1-shaped workload and cross-check
   the four state layers (groups, key cache, page-table pkey bits,
   metadata region) after each run.

Run:  python examples/fault_injection_demo.py
"""

from repro import Kernel, Libmpk, PAGE_SIZE, PROT_READ, PROT_WRITE
from repro.apps.sslserver import HttpServer, SslLibrary
from repro.apps.sslserver.workers import WorkerPool
from repro.errors import InjectedFault
from repro.faults import FaultInjector, Table1Workload, run_campaign

RW = PROT_READ | PROT_WRITE


def signal_recovery():
    print("=== 1. worker crash isolation (simulated SIGSEGV) ===")
    kernel = Kernel()
    process = kernel.create_process()
    task = process.main_task
    lib = Libmpk(process)
    lib.mpk_init(task)
    ssl = SslLibrary(kernel, process, task, mode="libmpk", lib=lib)
    server = HttpServer(kernel, process, task, ssl)

    for policy in ("abort", "kill"):
        pool = WorkerPool(kernel, process, server, workers=2,
                          crash_policy=policy)
        pool.serve()
        # A compromised handler reads the key heap outside any domain:
        contained = pool.dispatch(
            lambda worker: worker.read(ssl.key_heap_base, 16))
        pool.serve()  # ...and the pool keeps serving afterwards
        stats = pool.stats()
        print(f"  policy={policy:<5} contained={not contained} "
              f"ok={stats['requests_ok']} "
              f"aborted={stats['requests_aborted']} "
              f"killed={stats['workers_killed']} "
              f"live={stats['live_workers']}")
    print(f"  libmpk audit after both crashes: {lib.audit()}")
    print()


def scripted_injection():
    print("=== 2. deterministic injection + rollback ===")
    kernel = Kernel()
    process = kernel.create_process()
    task = process.main_task
    lib = Libmpk(process)
    lib.mpk_init(task)
    addr = lib.mpk_mmap(task, 7, PAGE_SIZE, RW)
    del addr

    injector = FaultInjector()
    kernel.machine.obs.add_sink(injector)
    injector.arm("libmpk.metadata.update", occurrence=1)
    try:
        lib.mpk_begin(task, 7, RW)
    except InjectedFault as exc:
        print(f"  injected: {exc}")
    finally:
        kernel.machine.obs.remove_sink(injector)
    group = lib.group(7)
    print(f"  after rollback: pinned_by={sorted(group.pinned_by)} "
          f"(the failed begin left no pin)")
    print(f"  {lib.audit()}")
    lib.mpk_begin(task, 7, RW)  # the same call now simply works
    lib.mpk_end(task, 7)
    print(f"  retried begin/end: ok, {lib.audit()}")
    print()


def campaign():
    print("=== 3. the exhaustive campaign ===")
    report = run_campaign(Table1Workload(), mode="exhaustive")
    print("  " + report.format().replace("\n", "\n  "))


def main():
    signal_recovery()
    scripted_injection()
    campaign()


if __name__ == "__main__":
    main()
