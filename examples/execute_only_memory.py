#!/usr/bin/env python3
"""Execute-only memory: the kernel's broken version vs libmpk's (§3.3).

Linux (4.9+) implements mprotect(PROT_EXEC) with a protection key —
but only updates the *calling thread's* PKRU.  A sibling thread whose
PKRU happens to permit the key (it legitimately set its own register)
can read the "execute-only" code: the semantic gap between MPK's
thread-local registers and mprotect's process-wide promise.

libmpk's mpk_mprotect(PROT_EXEC) routes the group through a reserved
hardware key and synchronizes the denial to *every* thread with
do_pkey_sync, restoring the promise.

Run:  python examples/execute_only_memory.py
"""

from repro import (
    Kernel,
    Libmpk,
    PAGE_SIZE,
    PROT_EXEC,
    PROT_READ,
    PROT_WRITE,
)
from repro.hw.pkru import PKRU

RW = PROT_READ | PROT_WRITE
SECRET_CODE = b"\x48\x31\xc0\x48\xff\xc0\xc3"  # xor rax,rax; inc; ret


def kernel_execute_only():
    print("== kernel mprotect(PROT_EXEC): the broken promise ==")
    kernel = Kernel()
    process = kernel.create_process()
    writer = process.main_task
    sibling = process.spawn_task()
    kernel.scheduler.schedule(sibling, charge=False)
    # The sibling configured its own PKRU earlier (a perfectly legal
    # userspace action — e.g. it uses MPK for its own purposes).
    sibling.wrpkru(PKRU.allow_all().value)

    addr = kernel.sys_mmap(writer, PAGE_SIZE, RW)
    writer.write(addr, SECRET_CODE)
    kernel.sys_mprotect(writer, addr, PAGE_SIZE, PROT_EXEC)

    print("caller reads own XO page  :", writer.try_read(addr, 7))
    print("caller executes it        :", writer.fetch(addr, 7).hex())
    leaked = sibling.try_read(addr, 7)
    print("sibling reads the XO page :",
          leaked.hex() if leaked else None,
          "<-- the secret code leaks!" if leaked else "")
    print()


def libmpk_execute_only():
    print("== libmpk mpk_mprotect(PROT_EXEC): the promise kept ==")
    kernel = Kernel()
    process = kernel.create_process()
    writer = process.main_task
    sibling = process.spawn_task()
    kernel.scheduler.schedule(sibling, charge=False)
    sibling.wrpkru(PKRU.allow_all().value)  # same head start

    lib = Libmpk(process)
    lib.mpk_init(writer)
    CODE = 100
    addr = lib.mpk_mmap(writer, CODE, PAGE_SIZE, RW)
    lib.mpk_mprotect(writer, CODE, RW)
    writer.write(addr, SECRET_CODE)
    lib.mpk_mprotect(writer, CODE, PROT_EXEC)

    print("caller reads own XO page  :", writer.try_read(addr, 7))
    print("caller executes it        :", writer.fetch(addr, 7).hex())
    print("sibling reads the XO page :", sibling.try_read(addr, 7),
          "(do_pkey_sync revoked every thread)")
    print("sibling executes it       :", sibling.fetch(addr, 7).hex())
    print("reserved execute-only key :", lib.exec_only_pkey)


def main():
    kernel_execute_only()
    libmpk_execute_only()


if __name__ == "__main__":
    main()
