#!/usr/bin/env python3
"""Observability: cycle attribution, span profiles, traces, procfs.

Runs a small libmpk workload and then asks the instrumentation spine
(`machine.obs`) where the cycles went:

* the per-site breakdown — every simulated cycle is charged to a
  dotted ``layer.op.component`` site, and the conservation audit
  proves none leaked;
* the hierarchical span profile — inclusive vs. self cycles for each
  libmpk API call and the kernel work nested inside it;
* the classic execution trace (``attach_tracer`` is now a subscriber
  on the same span stream);
* the /proc-style views: smaps with protection keys, status, and the
  machine-wide mpk_stats node.

Run:  python examples/observability_demo.py
"""

from repro import Kernel, Libmpk, PROT_READ, PROT_WRITE
from repro.kernel.procfs import format_mpk_stats, format_smaps, status
from repro.trace import attach_tracer, format_trace

RW = PROT_READ | PROT_WRITE


def main():
    kernel = Kernel()
    process = kernel.create_process()
    task = process.main_task
    lib = Libmpk(process)
    lib.mpk_init(task)
    obs = kernel.machine.obs
    ring = obs.attach_ring_log(capacity=256)

    tracer = attach_tracer(kernel=kernel, lib=lib)

    SECRET, SHARED = 100, 101
    secret = lib.mpk_mmap(task, SECRET, 8192, RW)
    with lib.domain(task, SECRET, RW):
        task.write(secret, b"api token")
    shared = lib.mpk_mmap(task, SHARED, 4096, RW)
    lib.mpk_mprotect(task, SHARED, RW)
    task.write(shared, b"shared state")
    lib.mpk_mprotect(task, SHARED, PROT_READ)

    tracer.detach()

    print("== where the cycles went (by subsystem) ==")
    print(obs.format_breakdown(depth=2))
    print()
    ok, delta = obs.audit()
    print(f"conservation audit: attributed {obs.aggregator.total():,.1f}"
          f" of {obs.clock.now:,.1f} clock cycles -> "
          f"{'ok' if ok else f'LEAK {delta:.1f}'}")
    print()

    print("== span profile (calls, inclusive/self cycles) ==")
    print(obs.format_profile())
    print()

    print("== execution trace (simulated cycles, inclusive) ==")
    print(format_trace(tracer.events))
    print()
    print(f"{tracer.count('libmpk')} libmpk calls, "
          f"{tracer.count('kernel')} kernel syscalls; libmpk total "
          f"{tracer.total_cycles('libmpk'):,.1f} cycles")
    print()

    print("== last raw charges (ring log) ==")
    for record in ring.events()[-5:]:
        print(f"  [{record.now:>10,.1f}] {record.site:<32s} "
              f"+{record.cycles:,.1f}")
    print(f"  ({len(ring)} buffered, {ring.dropped} dropped)")
    print()

    print("== /proc/<pid>/smaps (with protection keys) ==")
    print(format_smaps(process))
    print()

    print("== /proc/<pid>/status ==")
    for key, value in status(process).items():
        print(f"  {key:>20s}: {value}")
    print()

    print("== /proc/mpk_stats ==")
    print(format_mpk_stats(process, depth=1))
    print()

    print("== libmpk stats ==")
    for key, value in lib.stats().items():
        print(f"  {key:>24s}: {value}")


if __name__ == "__main__":
    main()
