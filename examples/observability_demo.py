#!/usr/bin/env python3
"""Observability: tracing libmpk and reading the process's smaps.

Attaches the cycle-annotated tracer to a kernel + libmpk pair, runs a
small workload, and prints (a) the execution trace — every libmpk call
with the kernel work nested inside it and its simulated cost — and
(b) the /proc-style view of the address space, protection keys
included, plus libmpk's own stats() counters.

Run:  python examples/observability_demo.py
"""

from repro import Kernel, Libmpk, PROT_READ, PROT_WRITE
from repro.kernel.procfs import format_smaps, status
from repro.trace import attach_tracer, format_trace

RW = PROT_READ | PROT_WRITE


def main():
    kernel = Kernel()
    process = kernel.create_process()
    task = process.main_task
    lib = Libmpk(process)
    lib.mpk_init(task)

    tracer = attach_tracer(kernel=kernel, lib=lib)

    SECRET, SHARED = 100, 101
    secret = lib.mpk_mmap(task, SECRET, 8192, RW)
    with lib.domain(task, SECRET, RW):
        task.write(secret, b"api token")
    shared = lib.mpk_mmap(task, SHARED, 4096, RW)
    lib.mpk_mprotect(task, SHARED, RW)
    task.write(shared, b"shared state")
    lib.mpk_mprotect(task, SHARED, PROT_READ)

    tracer.detach()

    print("== execution trace (simulated cycles, inclusive) ==")
    print(format_trace(tracer.events))
    print()
    print(f"{tracer.count('libmpk')} libmpk calls, "
          f"{tracer.count('kernel')} kernel syscalls; libmpk total "
          f"{tracer.total_cycles('libmpk'):,.1f} cycles")
    print()

    print("== /proc/<pid>/smaps (with protection keys) ==")
    print(format_smaps(process))
    print()

    print("== /proc/<pid>/status ==")
    for key, value in status(process).items():
        print(f"  {key:>20s}: {value}")
    print()

    print("== libmpk stats ==")
    for key, value in lib.stats().items():
        print(f"  {key:>24s}: {value}")


if __name__ == "__main__":
    main()
