#!/usr/bin/env python3
"""Related work as libmpk clients: ERIM components + a shadow stack.

§8 of the paper argues contemporaneous MPK systems (ERIM's trusted
components, Burow et al.'s shadow stacks) "can leverage libmpk to
achieve secure and scalable key management".  This demo runs both on
top of libmpk:

1. thirty ERIM-style trusted components — twice the hardware key
   budget — each guarding its own secret behind a call gate, with the
   WRPKRU sandbox closing the gadget surface;
2. a shadow stack that catches a smashed return address.

Run:  python examples/hardening_demo.py
"""

import struct

from repro import Kernel, Libmpk, PAGE_SIZE
from repro.apps.hardening import (
    ReturnAddressCorrupted,
    ShadowStack,
    TrustedComponent,
)
from repro.errors import SandboxViolation
from repro.hw.pkru import PKRU
from repro.security import install_wrpkru_sandbox


def erim_demo(kernel, process, task, lib):
    print("== ERIM-style trusted components ==")
    components = []
    for i in range(30):
        component = TrustedComponent(lib, task, vkey=900 + i,
                                     size=PAGE_SIZE)
        handle = component.store(task, b"secret-%02d" % i)
        components.append((component, handle))
    print(f"{len(components)} components on "
          f"{lib.cache.capacity} hardware keys")

    component, handle = components[17]
    print("inside its call gate :",
          component.read(task, handle, 9))
    print("outside the gate     :", task.try_read(handle, 9))

    install_wrpkru_sandbox(task)
    try:
        task.wrpkru(PKRU.allow_all().value)
    except SandboxViolation as exc:
        print("WRPKRU gadget        :", f"blocked ({exc})")
    print("gate still functional:",
          component.read(task, handle, 9))
    print()


def shadow_stack_demo(kernel, process, task, lib):
    print("== MPK-protected shadow stack ==")
    shadow = ShadowStack(lib, kernel, task, vkey=950)
    for depth in range(4):
        shadow.push(task, 0x400000 + 16 * depth)
    print(f"{shadow.depth} frames pushed (stack + protected shadow)")

    # The attacker smashes the on-stack return address of frame 2...
    task.write(shadow.stack_slot_addr(2), struct.pack("<Q", 0xBADC0DE))
    # ...but cannot touch the shadow copy.
    blocked = task.try_read(shadow.shadow_slot_addr(2), 8) is None
    print("shadow copy sealed   :", blocked)

    shadow.pop(task)  # frame 3: clean
    try:
        shadow.pop(task)
        shadow.pop(task)  # frame 2 would be reached here
    except ReturnAddressCorrupted as exc:
        print("epilogue check       :", f"CAUGHT — {exc}")


def main():
    kernel = Kernel()
    process = kernel.create_process()
    task = process.main_task
    lib = Libmpk(process)
    lib.mpk_init(task)
    erim_demo(kernel, process, task, lib)
    shadow_stack_demo(kernel, process, task, lib)


if __name__ == "__main__":
    main()
