#!/usr/bin/env python3
"""Protecting gigabytes: the Memcached case study (§5.3, Figure 14).

Builds the Memcached model in its four protection configurations and
drives each with the twemperf-like load generator.  The point the
paper makes: libmpk's cost is *independent of the protected size* —
wrapping every access of a 1 GB slab area costs a WRPKRU, while
mprotect pays for every one of the 262,144 pages, every time.

Run:  python examples/memcached_demo.py
"""

from repro import Kernel, Libmpk
from repro.apps.kvstore import Memcached, PROTECTION_MODES, Twemperf
from repro.errors import MachineFault

SLAB_BYTES = 1 << 30  # the paper's 1 GB pre-allocated slab area


def build(mode: str):
    kernel = Kernel()
    process = kernel.create_process()
    task = process.main_task
    for _ in range(3):  # four worker threads total
        kernel.scheduler.schedule(process.spawn_task(), charge=False)
    lib = None
    if mode.startswith("mpk"):
        lib = Libmpk(process)
        lib.mpk_init(task)
    store = Memcached(kernel, process, task, mode=mode, lib=lib,
                      slab_bytes=SLAB_BYTES)
    return store, task


def isolation_check(store, task):
    """Is the stored data reachable by a stray read?"""
    store.set(task, b"card", b"4242-4242-4242-4242")
    try:
        task.read(store._slab_base, 64)
        return "slab READABLE by arbitrary-read attacker"
    except MachineFault:
        return "slab sealed (arbitrary read faults)"


def main():
    print(f"{'mode':14s} {'cycles/conn':>14s} {'handled@1000':>13s} "
          f"{'unhandled':>10s}  security")
    print("-" * 76)
    baseline = None
    for mode in PROTECTION_MODES:
        store, task = build(mode)
        sealed = isolation_check(store, task)
        result = Twemperf(store).run(task, conns_per_sec=1000,
                                     sample_connections=6)
        if mode == "none":
            baseline = result.cycles_per_connection
        rel = result.cycles_per_connection / baseline
        print(f"{mode:14s} {result.cycles_per_connection:>12,.0f} "
              f"({rel:4.1f}x) {result.handled_conns_per_sec:>10,.0f} "
              f"{result.unhandled_conns_per_sec:>10,.0f}  {sealed}")
    print()
    print("mpk_begin matches the unprotected original; mprotect pays "
          "per page of the 1 GB region; mpk_mprotect keeps mprotect's "
          "process-wide semantics at ~8x less cost.")


if __name__ == "__main__":
    main()
