#!/usr/bin/env python3
"""JIT W⊕X: the code-cache race condition and libmpk's fix (§5.2/§6.1).

Two ChakraCore-model engines protect their JIT code cache differently:

* mprotect-based W⊕X — the page is writable *process-wide* while the
  compiler patches it, so a compromised sibling thread wins the race
  and plants shellcode (SDCG's attack).
* libmpk one-key-per-process — write access exists only in the JIT
  thread's PKRU; the attacker's racing write dies with a pkey fault.

The demo then compares the cost side: permission-switch cycles spent
by each backend on the same compilation workload.

Run:  python examples/jit_wx_demo.py
"""

from repro import Kernel, Libmpk
from repro.apps.jit import (
    ENGINES,
    JsEngine,
    KeyPerProcessWx,
    MprotectWx,
)
from repro.security import jit_race_attack


def build(backend_name: str):
    kernel = Kernel()
    process = kernel.create_process()
    task = process.main_task
    if backend_name == "mprotect":
        backend = MprotectWx(kernel)
    else:
        lib = Libmpk(process)
        lib.mpk_init(task)
        backend = KeyPerProcessWx(kernel, lib)
    engine = JsEngine(kernel, process, ENGINES["chakracore"], backend)
    attacker = process.spawn_task()
    kernel.scheduler.schedule(attacker, charge=False)
    return engine, attacker


def race_demo():
    print("== the race-condition attack ==")
    for backend_name in ("mprotect", "libmpk"):
        engine, attacker = build(backend_name)
        result = jit_race_attack(engine, attacker)
        verdict = "SHELLCODE PLANTED" if result.succeeded else "blocked"
        print(f"{backend_name:>9s} W^X: {verdict} - {result.detail}")
    print()


def cost_demo():
    print("== permission-switch cost on the same JIT workload ==")
    for backend_name in ("mprotect", "libmpk"):
        engine, _ = build(backend_name)
        for _ in range(20):
            addr = engine.compile_function(300)
            engine.patch_function(addr, times=8)
            engine.execute_native(addr, 300, iterations=50)
        print(f"{backend_name:>9s}: {engine.backend.switch_cycles:>12,.0f} "
              f"cycles in permission switches "
              f"({engine.backend.emissions} emissions)")


def main():
    race_demo()
    cost_demo()


if __name__ == "__main__":
    main()
