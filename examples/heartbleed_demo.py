#!/usr/bin/env python3
"""Heartbleed vs libmpk: the §6.1 OpenSSL security evaluation, live.

Builds two HTTPS servers — one with private keys on the ordinary heap,
one with keys in a libmpk page group — and fires the same malicious
heartbeat (tiny payload, huge claimed length) at both.

Expected output: the stock server leaks its private key; the hardened
server dies with a pkey fault at the page-group boundary, exactly as
the paper reports ("OpenSSL hardened by libmpk crashes with invalid
memory access").

Run:  python examples/heartbleed_demo.py
"""

from repro import Kernel, Libmpk, PAGE_SIZE, PROT_READ, PROT_WRITE
from repro.apps.sslserver import HttpServer, SslLibrary
from repro.security import heartbleed_attack

RW = PROT_READ | PROT_WRITE


def build_server(mode: str):
    kernel = Kernel()
    process = kernel.create_process()
    task = process.main_task
    lib = None
    if mode == "libmpk":
        lib = Libmpk(process)
        lib.mpk_init(task)
    # Map the network receive buffer first so the SSL key heap lands
    # directly above it — the adjacency the over-read walks into.
    recv = kernel.sys_mmap(task, PAGE_SIZE, RW)
    ssl = SslLibrary(kernel, process, task, mode=mode, lib=lib)
    server = HttpServer(kernel, process, task, ssl,
                        recv_buffer_addr=recv)
    return server, task


def attack(mode: str):
    print(f"--- {mode} OpenSSL ---")
    server, task = build_server(mode)

    # Sanity: the server works normally.
    server.handle_request(task, response_size=512)
    print("normal request served; normal heartbeat:",
          server.handle_heartbeat(task, b"ping", 4))

    result = heartbleed_attack(server, task)
    if result.succeeded:
        print(f"ATTACK SUCCEEDED: {result.detail} "
              f"({len(result.leaked)} bytes exfiltrated)")
        print("leaked bytes around the key:",
              result.leaked[PAGE_SIZE:PAGE_SIZE + 24].hex())
    else:
        print(f"attack blocked: {result.detail}")
    print()


def main():
    attack("insecure")
    attack("libmpk")
    print("Same attack, same server code path - only the allocator "
          "(OPENSSL_malloc vs mpk_malloc) and the mpk_begin/mpk_end "
          "wrappers differ, 83 changed lines in the paper's port.")


if __name__ == "__main__":
    main()
