#!/usr/bin/env python3
"""The raw-MPK pitfalls of §3.1, demonstrated — then fixed by libmpk.

Two demos against the *kernel interfaces alone* (no libmpk):

1. protection-key use-after-free — pkey_free() does not scrub PTEs, so
   pkey_alloc() can hand new code a key that still guards old pages.
2. protection-key corruption — applications keep pkey values in
   writable memory; an arbitrary-write attacker redirects them.

Each is then replayed against libmpk, where key virtualization and the
read-only metadata page close the hole.

Run:  python examples/pkey_pitfalls.py
"""

from repro import (
    Kernel,
    Libmpk,
    PAGE_SIZE,
    PROT_READ,
    PROT_WRITE,
)
from repro.errors import MpkMetadataTampering
from repro.hw.pkru import KEY_RIGHTS_NONE
from repro.security import (
    pkey_corruption_attack,
    pkey_use_after_free_attack,
)

RW = PROT_READ | PROT_WRITE


def fresh():
    kernel = Kernel()
    process = kernel.create_process()
    return kernel, process, process.main_task


def use_after_free_raw():
    print("== 1a. protection-key use-after-free (raw MPK) ==")
    kernel, process, task = fresh()
    key = kernel.sys_pkey_alloc(task)
    secret = kernel.sys_mmap(task, PAGE_SIZE, RW)
    kernel.sys_pkey_mprotect(task, secret, PAGE_SIZE, RW, key)
    task.write(secret, b"tenant A's secret")
    task.pkey_set(key, KEY_RIGHTS_NONE)     # sealed
    kernel.sys_pkey_free(task, key)          # ...but PTEs keep the key
    stale = process.page_table.pages_with_pkey(key)
    print(f"after pkey_free({key}): {len(stale)} page(s) still tagged "
          f"with the freed key")
    result = pkey_use_after_free_attack(kernel, task, secret, key)
    print("outcome:", result.detail,
          f"-> leaked {result.leaked!r}" if result.succeeded else "")


def use_after_free_libmpk():
    print("\n== 1b. the same flow under libmpk ==")
    kernel, process, task = fresh()
    lib = Libmpk(process)
    lib.mpk_init(task)
    secret = lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
    with lib.domain(task, 100, RW):
        task.write(secret, b"tenant A's secret")
    lib.mpk_munmap(task, 100)                # group destroyed cleanly
    fresh_addr = lib.mpk_mmap(task, 200, PAGE_SIZE, RW)
    with lib.domain(task, 200, RW):
        content = task.read(fresh_addr, 17)
    print("new group's memory after key reuse:", content,
          "(zeroed - nothing stale to inherit)")


def corruption_raw():
    print("\n== 2a. protection-key corruption (raw MPK) ==")
    kernel, process, task = fresh()
    victim_key = kernel.sys_pkey_alloc(task)
    victim = kernel.sys_mmap(task, PAGE_SIZE, RW)
    kernel.sys_pkey_mprotect(task, victim, PAGE_SIZE, RW, victim_key)
    task.write(victim, b"victim data")
    task.pkey_set(victim_key, KEY_RIGHTS_NONE)

    app_key = kernel.sys_pkey_alloc(task)
    key_var = kernel.sys_mmap(task, PAGE_SIZE, RW)  # pkey in memory!
    task.write(key_var, bytes([app_key]))
    result = pkey_corruption_attack(kernel, task, key_var, victim)
    print("outcome:", result.detail,
          f"-> leaked {result.leaked!r}" if result.succeeded else "")


def corruption_libmpk():
    print("\n== 2b. the same attack surface under libmpk ==")
    kernel, process, task = fresh()
    lib = Libmpk(process)
    lib.mpk_init(task, static_vkeys=[100])  # load-time call-site scan
    victim = lib.mpk_mmap(task, 100, PAGE_SIZE, RW)
    with lib.domain(task, 100, RW):
        task.write(victim, b"victim data")
    try:
        lib.mpk_begin(task, 0x41414141, RW)  # corrupted vkey argument
    except MpkMetadataTampering as exc:
        print("corrupted vkey rejected at the call site:", exc)
    record_addr = lib.metadata.record_user_addr(100)
    try:
        task.write(record_addr, b"\xff" * 8)
        verdict = "LANDED (bug!)"
    except Exception as exc:
        verdict = f"faults ({type(exc).__name__})"
    print("vkey->pkey metadata lives at a read-only mapping "
          f"({record_addr:#x}); overwrite attempt:", verdict)


def main():
    use_after_free_raw()
    use_after_free_libmpk()
    corruption_raw()
    corruption_libmpk()


if __name__ == "__main__":
    main()
